//! The declarative experiment API: a serializable [`ExperimentSpec`] describing one sweep.
//!
//! Every figure of the paper's evaluation — and any scenario beyond it — is one value of
//! this module: a named sweep **axis** with its values, a **scenario template** mapped
//! onto [`ScenarioBuilder`], a closed set of **arms** (every scheme the figures compare),
//! a **seed policy** (explicit list or a `start..start+count` range, with the
//! stream-seed derivation pinned by [`baselines::StreamDerivation`] name), **solver**
//! settings (preset plus tolerance overrides), **engine** options (threads, chunking,
//! streaming, warm start), and the **reports** to render from the evaluated grid.
//!
//! A spec is *data*: it serializes to JSON ([`ExperimentSpec::to_json_string`]) and back
//! ([`ExperimentSpec::from_json_str`]) losslessly, so a sweep description can be received
//! over a wire, cached, diffed, replayed, and sharded (a shard is a spec plus a seed
//! range). Running one compiles it onto the existing imperative machinery — the spec's
//! [`ExperimentSpec::grid`] produces exactly the [`SweepGrid`] the historical figure
//! modules built by hand, so the engine's scenario sharing, allocation-free hot path,
//! streaming reduction and warm-start continuation are reused unchanged, and
//! [`SweepEngine::run_spec`] is bit-identical to the legacy path (asserted by the
//! `spec_identity` integration test for every figure).
//!
//! ```rust
//! use experiments::presets;
//! use experiments::SweepEngine;
//!
//! # fn main() -> Result<(), experiments::spec::SpecError> {
//! let mut spec = presets::spec(2, presets::Variant::Quick).expect("figure 2 exists");
//! spec.seeds.policy = experiments::spec::SeedPolicy::Range { start: 0, count: 1 };
//! spec.scenario.devices = Some(6); // keep the doctest fast
//!
//! // Lossless JSON round trip: the serialized form *is* the experiment.
//! let text = spec.to_json_string();
//! assert_eq!(experiments::spec::ExperimentSpec::from_json_str(&text)?, spec);
//!
//! let run = spec.run_with_engine(&SweepEngine::single_thread())?;
//! assert_eq!(run.reports.len(), 2); // fig2a (energy) and fig2b (delay)
//! # Ok(())
//! # }
//! ```
//!
//! # Wire format
//!
//! The JSON schema is versioned by the top-level `schema_version` field (currently
//! [`SCHEMA_VERSION`]); parsing rejects other versions and unknown keys (typos fail
//! loudly instead of silently changing the experiment). Optional fields are omitted when
//! unset, object member order is fixed, and floats use shortest-round-trip formatting, so
//! serialization is deterministic and byte-stable — see `examples/specs/` for a committed
//! example and the README for the annotated schema.

use crate::arms::{
    BenchmarkArm, CommOnlyArm, CompOnlyArm, ConfiguredArm, DeadlineProposedArm, DeadlineSource,
    ProposedArm, Scheme1Arm,
};
use crate::engine::{Arm, SweepEngine, SweepGrid, SweepResult};
use crate::json::{Json, JsonError, MAX_EXACT_INT};
use crate::report::FigureReport;
use baselines::StreamDerivation;
use fedopt_core::{CoreError, SolverConfig};
use flsys::{ScenarioBuilder, Weights};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The wire-format version this module reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Most scenario seeds one spec may carry (10⁷ ≈ an 80 MB materialized seed vector).
/// Larger experiments must be sharded: a shard is the same spec with a seed sub-range
/// (`seeds.start`/`seeds.count`), so the cap bounds a *unit of work*, not the protocol.
/// `fedopt run --shards N` splits and runs one automatically; `fedopt shard split`
/// prints the shard specs (see [`crate::shard::split`]).
pub const MAX_SEEDS: u64 = 10_000_000;

/// Most devices one scenario may hold (10⁶). One solve at this count is feasible with the
/// struct-of-arrays hot path (seven `f64` lanes ≈ 56 MB plus the allocation buffers), but
/// a *sweep* over such scenarios is not a unit of work this crate schedules — past the
/// guardrail the spec layer fails loudly and points at the [`crate::presets::large_n`]
/// quick preset, which expresses the fleet-scale single-scenario experiment (few seeds,
/// reference polish off) instead of a paper-style grid. Mirrors the [`MAX_SEEDS`] cap: it
/// bounds a unit of work, not the protocol.
pub const MAX_DEVICES: usize = 1_000_000;

/// Why a spec could not be parsed, validated, compiled, or run.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The input was not valid JSON.
    Json(JsonError),
    /// The JSON was well-formed but not a valid spec; `path` locates the offending field.
    Invalid {
        /// Dotted path of the field, e.g. `axis.values[2]`.
        path: String,
        /// What is wrong with it.
        message: String,
    },
    /// The compiled sweep failed while running.
    Sweep(CoreError),
}

impl SpecError {
    pub(crate) fn invalid(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self::Invalid { path: path.into(), message: message.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "spec is not valid JSON: {e}"),
            SpecError::Invalid { path, message } => {
                write!(f, "invalid spec at `{path}`: {message}")
            }
            SpecError::Sweep(e) => write!(f, "sweep failed: {e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Json(e) => Some(e),
            SpecError::Sweep(e) => Some(e),
            SpecError::Invalid { .. } => None,
        }
    }
}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

impl From<CoreError> for SpecError {
    fn from(e: CoreError) -> Self {
        SpecError::Sweep(e)
    }
}

// ---------------------------------------------------------------------------
// Axis
// ---------------------------------------------------------------------------

/// Which scenario knob (or arm input) the sweep's x values drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AxisKind {
    /// Maximum transmit power in dBm (Figures 2 and 8).
    PMaxDbm,
    /// Maximum CPU frequency in GHz (Figure 3).
    FMaxGhz,
    /// Number of devices (Figure 4); values must be positive integers.
    Devices,
    /// Radius of the placement disc in kilometres (Figure 5).
    RadiusKm,
    /// Local iterations per global round (Figure 6); values must be positive integers.
    LocalIterations,
    /// Global aggregation rounds; values must be positive integers.
    GlobalRounds,
    /// Completion-time deadline in seconds (Figure 7). Leaves the scenario untouched —
    /// deadline-constrained arms read the x value directly.
    DeadlineS,
}

impl AxisKind {
    /// The stable wire name of this axis.
    pub const fn name(self) -> &'static str {
        match self {
            Self::PMaxDbm => "p_max_dbm",
            Self::FMaxGhz => "f_max_ghz",
            Self::Devices => "devices",
            Self::RadiusKm => "radius_km",
            Self::LocalIterations => "local_iterations",
            Self::GlobalRounds => "global_rounds",
            Self::DeadlineS => "deadline_s",
        }
    }

    /// Looks an axis up by its wire name.
    pub fn from_name(name: &str) -> Option<Self> {
        [
            Self::PMaxDbm,
            Self::FMaxGhz,
            Self::Devices,
            Self::RadiusKm,
            Self::LocalIterations,
            Self::GlobalRounds,
            Self::DeadlineS,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }

    /// Whether values on this axis must be positive integers.
    pub fn is_integer(self) -> bool {
        matches!(self, Self::Devices | Self::LocalIterations | Self::GlobalRounds)
    }

    fn check(self, x: f64, path: &str) -> Result<(), SpecError> {
        if !x.is_finite() {
            return Err(SpecError::invalid(path, "axis values must be finite"));
        }
        if self.is_integer() && (x.fract() != 0.0 || !(1.0..=4_294_967_295.0).contains(&x)) {
            return Err(SpecError::invalid(
                path,
                format!("axis `{}` requires positive integer values, got {x}", self.name()),
            ));
        }
        if self == Self::Devices && x > MAX_DEVICES as f64 {
            return Err(SpecError::invalid(
                path,
                format!(
                    "axis `devices` is capped at {MAX_DEVICES} devices per scenario (got {x}); \
                     fleet-scale experiments should start from the `large_n` quick preset \
                     (`experiments::presets::large_n`) and split the seed grid across \
                     workers with `fedopt run --shards N` or `fedopt shard split`, not \
                     grow a single sweep past the guardrail"
                ),
            ));
        }
        // dBm is a log scale (negative is meaningful); the physical magnitudes are not —
        // and a non-positive deadline would only produce silent all-infeasible rows,
        // while the equivalent fixed-deadline arm fails loudly.
        let must_be_positive = matches!(self, Self::FMaxGhz | Self::RadiusKm | Self::DeadlineS);
        if must_be_positive && x <= 0.0 {
            return Err(SpecError::invalid(
                path,
                format!("axis `{}` requires strictly positive values, got {x}", self.name()),
            ));
        }
        Ok(())
    }

    /// Applies one axis value to a sweep point's scenario builder.
    pub(crate) fn apply(self, builder: ScenarioBuilder, x: f64) -> ScenarioBuilder {
        match self {
            Self::PMaxDbm => builder.with_p_max_dbm(x),
            Self::FMaxGhz => builder.with_f_max_ghz(x),
            Self::Devices => builder.with_devices(x as usize),
            Self::RadiusKm => builder.with_radius_km(x),
            Self::LocalIterations => builder.with_local_iterations(x as u32),
            Self::GlobalRounds => builder.with_global_rounds(x as u32),
            Self::DeadlineS => builder,
        }
    }
}

/// The sweep axis: which knob varies and the values it takes (the figure's x values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisSpec {
    /// The swept knob.
    pub kind: AxisKind,
    /// The x values, in plot order.
    pub values: Vec<f64>,
}

impl AxisSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.kind.name().to_string())),
            ("values", Json::Arr(self.values.iter().map(|&v| Json::Num(v)).collect())),
        ])
    }

    fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let obj = Obj::new(v, path, &["name", "values"])?;
        let name = obj.str("name")?;
        let kind = AxisKind::from_name(name).ok_or_else(|| {
            SpecError::invalid(obj.path_of("name"), format!("unknown axis name {name:?}"))
        })?;
        Ok(Self { kind, values: obj.f64_array("values")? })
    }
}

// ---------------------------------------------------------------------------
// Scenario template / patch
// ---------------------------------------------------------------------------

/// A serializable patch over [`ScenarioBuilder::paper_default`]: every field is optional
/// and unset fields keep the paper's Section VII-A defaults.
///
/// Used twice: as the spec's scenario **template** (shared by every sweep point) and as a
/// per-arm **patch** ([`ArmSpec::scenario`], how Figures 5 and 6 express per-series
/// device counts and round counts).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Number of devices `N`.
    pub devices: Option<usize>,
    /// Radius of the placement disc in kilometres.
    pub radius_km: Option<f64>,
    /// Samples per device (mutually exclusive with [`Self::total_samples`]).
    pub samples_per_device: Option<u64>,
    /// Total samples split equally across devices (Figure 4's setting).
    pub total_samples: Option<u64>,
    /// Per-sample CPU-cycle range `[lo, hi]` from which `c_n` is drawn.
    pub cycles_per_sample: Option<(f64, f64)>,
    /// Upload payload `d_n` in bits.
    pub upload_bits: Option<f64>,
    /// Minimum transmit power in dBm.
    pub p_min_dbm: Option<f64>,
    /// Maximum transmit power in dBm.
    pub p_max_dbm: Option<f64>,
    /// Minimum CPU frequency in Hz.
    pub f_min_hz: Option<f64>,
    /// Maximum CPU frequency in GHz.
    pub f_max_ghz: Option<f64>,
    /// Global aggregation rounds `R_g`.
    pub global_rounds: Option<u32>,
    /// Local iterations per global round `R_l`.
    pub local_iterations: Option<u32>,
    /// Total uplink bandwidth `B` in Hz.
    pub total_bandwidth_hz: Option<f64>,
    /// Log-normal shadowing standard deviation in dB (`0` disables fading).
    pub shadowing_db: Option<f64>,
}

impl ScenarioSpec {
    /// Applies the patch to a builder (unset fields leave it unchanged).
    pub fn apply(&self, mut builder: ScenarioBuilder) -> ScenarioBuilder {
        if let Some(n) = self.devices {
            builder = builder.with_devices(n);
        }
        if let Some(r) = self.radius_km {
            builder = builder.with_radius_km(r);
        }
        if let Some(s) = self.samples_per_device {
            builder = builder.with_samples_per_device(s);
        }
        if let Some(t) = self.total_samples {
            builder = builder.with_total_samples(t);
        }
        if let Some((lo, hi)) = self.cycles_per_sample {
            builder = builder.with_cycles_per_sample_range(lo, hi);
        }
        if let Some(b) = self.upload_bits {
            builder = builder.with_upload_bits(b);
        }
        if let Some(p) = self.p_min_dbm {
            builder = builder.with_p_min_dbm(p);
        }
        if let Some(p) = self.p_max_dbm {
            builder = builder.with_p_max_dbm(p);
        }
        if let Some(f) = self.f_min_hz {
            builder = builder.with_f_min_hz(f);
        }
        if let Some(f) = self.f_max_ghz {
            builder = builder.with_f_max_ghz(f);
        }
        if let Some(r) = self.global_rounds {
            builder = builder.with_global_rounds(r);
        }
        if let Some(r) = self.local_iterations {
            builder = builder.with_local_iterations(r);
        }
        if let Some(b) = self.total_bandwidth_hz {
            builder = builder.with_total_bandwidth(wireless_hertz(b));
        }
        if let Some(s) = self.shadowing_db {
            builder = builder.with_shadowing_db(s);
        }
        builder
    }

    /// Whether every field is unset (an identity patch).
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    pub(crate) fn validate(&self, path: &str) -> Result<(), SpecError> {
        if self.samples_per_device.is_some() && self.total_samples.is_some() {
            return Err(SpecError::invalid(
                path,
                "`samples_per_device` and `total_samples` are mutually exclusive",
            ));
        }
        if let Some((lo, hi)) = self.cycles_per_sample {
            if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo) {
                return Err(SpecError::invalid(
                    format!("{path}.cycles_per_sample"),
                    format!("range [{lo}, {hi}] must be positive and ordered"),
                ));
            }
        }
        // dBm values are log-scale (negative is fine) and shadowing may be 0 (disabled);
        // the physical magnitudes must be strictly positive.
        for (name, value) in [("p_min_dbm", self.p_min_dbm), ("p_max_dbm", self.p_max_dbm)] {
            if let Some(v) = value {
                if !v.is_finite() {
                    return Err(SpecError::invalid(format!("{path}.{name}"), "must be finite"));
                }
            }
        }
        if let Some(v) = self.shadowing_db {
            if !(v.is_finite() && v >= 0.0) {
                return Err(SpecError::invalid(
                    format!("{path}.shadowing_db"),
                    "must be finite and non-negative",
                ));
            }
        }
        for (name, value) in [
            ("radius_km", self.radius_km),
            ("upload_bits", self.upload_bits),
            ("f_min_hz", self.f_min_hz),
            ("f_max_ghz", self.f_max_ghz),
            ("total_bandwidth_hz", self.total_bandwidth_hz),
        ] {
            if let Some(v) = value {
                if !(v.is_finite() && v > 0.0) {
                    return Err(SpecError::invalid(
                        format!("{path}.{name}"),
                        "must be a positive finite number",
                    ));
                }
            }
        }
        if self.devices == Some(0) {
            return Err(SpecError::invalid(format!("{path}.devices"), "must be at least 1"));
        }
        if let Some(n) = self.devices {
            if n > MAX_DEVICES {
                return Err(SpecError::invalid(
                    format!("{path}.devices"),
                    format!(
                        "capped at {MAX_DEVICES} devices per scenario (got {n}); fleet-scale \
                         experiments should start from the `large_n` quick preset \
                         (`experiments::presets::large_n`) and spread the seed grid with \
                         `fedopt run --shards N` instead of growing a single scenario \
                         past the guardrail"
                    ),
                ));
            }
        }
        Ok(())
    }

    pub(crate) fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = Vec::new();
        let mut push = |key: &str, value: Option<Json>| {
            if let Some(v) = value {
                members.push((key.to_string(), v));
            }
        };
        push("devices", self.devices.map(|n| Json::uint(n as u64)));
        push("radius_km", self.radius_km.map(Json::Num));
        push("samples_per_device", self.samples_per_device.map(Json::uint));
        push("total_samples", self.total_samples.map(Json::uint));
        push(
            "cycles_per_sample",
            self.cycles_per_sample.map(|(lo, hi)| Json::Arr(vec![Json::Num(lo), Json::Num(hi)])),
        );
        push("upload_bits", self.upload_bits.map(Json::Num));
        push("p_min_dbm", self.p_min_dbm.map(Json::Num));
        push("p_max_dbm", self.p_max_dbm.map(Json::Num));
        push("f_min_hz", self.f_min_hz.map(Json::Num));
        push("f_max_ghz", self.f_max_ghz.map(Json::Num));
        push("global_rounds", self.global_rounds.map(|r| Json::uint(u64::from(r))));
        push("local_iterations", self.local_iterations.map(|r| Json::uint(u64::from(r))));
        push("total_bandwidth_hz", self.total_bandwidth_hz.map(Json::Num));
        push("shadowing_db", self.shadowing_db.map(Json::Num));
        Json::Obj(members)
    }

    pub(crate) fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let obj = Obj::new(
            v,
            path,
            &[
                "devices",
                "radius_km",
                "samples_per_device",
                "total_samples",
                "cycles_per_sample",
                "upload_bits",
                "p_min_dbm",
                "p_max_dbm",
                "f_min_hz",
                "f_max_ghz",
                "global_rounds",
                "local_iterations",
                "total_bandwidth_hz",
                "shadowing_db",
            ],
        )?;
        let spec = Self {
            devices: obj.opt_usize("devices")?,
            radius_km: obj.opt_f64("radius_km")?,
            samples_per_device: obj.opt_u64("samples_per_device")?,
            total_samples: obj.opt_u64("total_samples")?,
            cycles_per_sample: obj.opt_f64_pair("cycles_per_sample")?,
            upload_bits: obj.opt_f64("upload_bits")?,
            p_min_dbm: obj.opt_f64("p_min_dbm")?,
            p_max_dbm: obj.opt_f64("p_max_dbm")?,
            f_min_hz: obj.opt_f64("f_min_hz")?,
            f_max_ghz: obj.opt_f64("f_max_ghz")?,
            global_rounds: obj.opt_u32("global_rounds")?,
            local_iterations: obj.opt_u32("local_iterations")?,
            total_bandwidth_hz: obj.opt_f64("total_bandwidth_hz")?,
            shadowing_db: obj.opt_f64("shadowing_db")?,
        };
        spec.validate(path)?;
        Ok(spec)
    }
}

fn wireless_hertz(hz: f64) -> wireless::units::Hertz {
    wireless::units::Hertz::new(hz)
}

// ---------------------------------------------------------------------------
// Arms
// ---------------------------------------------------------------------------

/// Which random draw the benchmark arm makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BenchmarkDraw {
    /// Random CPU frequency at maximum power (the Figure-2 benchmark).
    Frequency,
    /// Random transmit power at maximum frequency (the Figure-3 benchmark).
    Power,
}

impl BenchmarkDraw {
    const fn name(self) -> &'static str {
        match self {
            Self::Frequency => "frequency",
            Self::Power => "power",
        }
    }
}

/// Where a deadline-constrained arm reads its deadline from (serializable twin of
/// [`DeadlineSource`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeadlineSpec {
    /// The sweep point's x value is the deadline (requires a
    /// [`AxisKind::DeadlineS`] axis).
    Axis,
    /// A fixed deadline in seconds (one series per value, as in Figure 8).
    FixedS(f64),
}

impl DeadlineSpec {
    fn to_source(self) -> DeadlineSource {
        match self {
            Self::Axis => DeadlineSource::FromX,
            Self::FixedS(t) => DeadlineSource::Fixed(t),
        }
    }
}

/// The closed set of schemes an arm can run — every comparison of the paper's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArmKind {
    /// The proposed joint optimizer at a fixed weight pair (Figures 2–6).
    Proposed {
        /// The objective weights `(w1, w2)`.
        weights: Weights,
    },
    /// The deadline-constrained proposed optimizer (Figures 7 and 8).
    DeadlineProposed {
        /// Where the deadline comes from.
        deadline: DeadlineSpec,
    },
    /// The random benchmark of Figures 2 and 3.
    Benchmark {
        /// Which resource is drawn at random.
        draw: BenchmarkDraw,
    },
    /// Communication-only optimization under the axis deadline (Figure 7).
    CommOnly,
    /// Computation-only optimization under the axis deadline (Figure 7).
    CompOnly,
    /// Scheme 1 (Yang et al., IEEE TWC 2021) at a fixed deadline (Figure 8).
    Scheme1 {
        /// The fixed deadline in seconds.
        deadline_s: f64,
    },
}

impl ArmKind {
    const fn name(&self) -> &'static str {
        match self {
            Self::Proposed { .. } => "proposed",
            Self::DeadlineProposed { .. } => "deadline_proposed",
            Self::Benchmark { .. } => "benchmark",
            Self::CommOnly => "comm_only",
            Self::CompOnly => "comp_only",
            Self::Scheme1 { .. } => "scheme1",
        }
    }
}

/// One column of the figure: a scheme, an optional display label, and an optional
/// per-arm scenario patch (applied after the sweep point's template + axis value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmSpec {
    /// The scheme.
    pub kind: ArmKind,
    /// Overrides the scheme's generated column label.
    pub label: Option<String>,
    /// Per-arm scenario overrides (Figures 5 and 6 sweep per-series device and round
    /// counts this way). Arms whose *effective* builders compare equal still share one
    /// scenario build per (point, seed) — the engine groups by prepared builder.
    pub scenario: Option<ScenarioSpec>,
}

impl ArmSpec {
    /// A plain arm of the given kind (no label or scenario overrides).
    pub fn new(kind: ArmKind) -> Self {
        Self { kind, label: None, scenario: None }
    }

    /// This arm with a display label.
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// This arm with a per-arm scenario patch.
    #[must_use]
    pub fn with_scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Compiles the arm description into a live [`Arm`].
    pub(crate) fn instantiate(&self, solver: SolverConfig) -> Box<dyn Arm> {
        let base: Box<dyn Arm> = match &self.kind {
            ArmKind::Proposed { weights } => Box::new(ProposedArm::new(*weights, solver)),
            ArmKind::DeadlineProposed { deadline } => {
                Box::new(DeadlineProposedArm::new(deadline.to_source(), solver))
            }
            ArmKind::Benchmark { draw: BenchmarkDraw::Frequency } => {
                Box::new(BenchmarkArm::random_frequency())
            }
            ArmKind::Benchmark { draw: BenchmarkDraw::Power } => {
                Box::new(BenchmarkArm::random_power())
            }
            ArmKind::CommOnly => Box::new(CommOnlyArm::new(solver)),
            ArmKind::CompOnly => Box::new(CompOnlyArm::new(solver)),
            ArmKind::Scheme1 { deadline_s } => Box::new(Scheme1Arm::new(*deadline_s, solver)),
        };
        if self.label.is_none() && self.scenario.is_none() {
            return base;
        }
        let mut configured = ConfiguredArm::new(base);
        if let Some(label) = &self.label {
            configured = configured.named(label.clone());
        }
        if let Some(patch) = &self.scenario {
            let patch = patch.clone();
            configured = configured.with_builder(move |b| patch.apply(b));
        }
        Box::new(configured)
    }

    pub(crate) fn validate(&self, path: &str) -> Result<(), SpecError> {
        match &self.kind {
            ArmKind::Scheme1 { deadline_s } if !(deadline_s.is_finite() && *deadline_s > 0.0) => {
                return Err(SpecError::invalid(
                    format!("{path}.deadline_s"),
                    "must be a positive finite number of seconds",
                ));
            }
            ArmKind::DeadlineProposed { deadline: DeadlineSpec::FixedS(t) }
                if !(t.is_finite() && *t > 0.0) =>
            {
                return Err(SpecError::invalid(
                    format!("{path}.deadline"),
                    "must be \"axis\" or a positive finite number of seconds",
                ));
            }
            _ => {}
        }
        if let Some(patch) = &self.scenario {
            patch.validate(&format!("{path}.scenario"))?;
        }
        Ok(())
    }

    pub(crate) fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> =
            vec![("kind".to_string(), Json::Str(self.kind.name().to_string()))];
        match &self.kind {
            ArmKind::Proposed { weights } => {
                members.push(("w1".to_string(), Json::Num(weights.energy())));
                members.push(("w2".to_string(), Json::Num(weights.time())));
            }
            ArmKind::DeadlineProposed { deadline } => {
                let value = match deadline {
                    DeadlineSpec::Axis => Json::Str("axis".to_string()),
                    DeadlineSpec::FixedS(t) => Json::Num(*t),
                };
                members.push(("deadline".to_string(), value));
            }
            ArmKind::Benchmark { draw } => {
                members.push(("draw".to_string(), Json::Str(draw.name().to_string())));
            }
            ArmKind::Scheme1 { deadline_s } => {
                members.push(("deadline_s".to_string(), Json::Num(*deadline_s)));
            }
            ArmKind::CommOnly | ArmKind::CompOnly => {}
        }
        if let Some(label) = &self.label {
            members.push(("label".to_string(), Json::Str(label.clone())));
        }
        if let Some(patch) = &self.scenario {
            members.push(("scenario".to_string(), patch.to_json()));
        }
        Json::Obj(members)
    }

    pub(crate) fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        // Strictness is per kind: each scheme allows exactly its own payload keys, so the
        // discriminator is peeked first and the full key check runs per variant.
        let kind_name = Obj::any(v, path)?.str("kind")?.to_string();
        fn with<'x>(extra: &[&'x str]) -> Vec<&'x str> {
            let mut allowed = vec!["kind", "label", "scenario"];
            allowed.extend_from_slice(extra);
            allowed
        }
        let (kind, obj) = match kind_name.as_str() {
            "proposed" => {
                let obj = Obj::new(v, path, &with(&["w1", "w2"]))?;
                let (w1, w2) = (obj.f64("w1")?, obj.f64("w2")?);
                let weights = Weights::new(w1, w2).map_err(|e| {
                    SpecError::invalid(path.to_string(), format!("invalid weights: {e}"))
                })?;
                (ArmKind::Proposed { weights }, obj)
            }
            "deadline_proposed" => {
                let obj = Obj::new(v, path, &with(&["deadline"]))?;
                let deadline = match obj.req("deadline")? {
                    Json::Str(s) if s == "axis" => DeadlineSpec::Axis,
                    Json::Num(t) => DeadlineSpec::FixedS(*t),
                    _ => {
                        return Err(SpecError::invalid(
                            obj.path_of("deadline"),
                            "must be \"axis\" or a number of seconds",
                        ))
                    }
                };
                (ArmKind::DeadlineProposed { deadline }, obj)
            }
            "benchmark" => {
                let obj = Obj::new(v, path, &with(&["draw"]))?;
                let draw = match obj.str("draw")? {
                    "frequency" => BenchmarkDraw::Frequency,
                    "power" => BenchmarkDraw::Power,
                    other => {
                        return Err(SpecError::invalid(
                            obj.path_of("draw"),
                            format!("unknown benchmark draw {other:?}"),
                        ))
                    }
                };
                (ArmKind::Benchmark { draw }, obj)
            }
            "comm_only" => (ArmKind::CommOnly, Obj::new(v, path, &with(&[]))?),
            "comp_only" => (ArmKind::CompOnly, Obj::new(v, path, &with(&[]))?),
            "scheme1" => {
                let obj = Obj::new(v, path, &with(&["deadline_s"]))?;
                (ArmKind::Scheme1 { deadline_s: obj.f64("deadline_s")? }, obj)
            }
            other => {
                return Err(SpecError::invalid(
                    format!("{path}.kind"),
                    format!("unknown arm kind {other:?}"),
                ))
            }
        };
        let label = obj.opt_str("label")?.map(str::to_string);
        let scenario = match obj.get("scenario") {
            Some(patch) => Some(ScenarioSpec::from_json(patch, &obj.path_of("scenario"))?),
            None => None,
        };
        let spec = Self { kind, label, scenario };
        spec.validate(path)?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Seeds
// ---------------------------------------------------------------------------

/// How the scenario seeds averaged over are produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedPolicy {
    /// The contiguous range `start .. start + count` — the natural shard unit: splitting
    /// a sweep across processes is splitting this range.
    Range {
        /// First seed.
        start: u64,
        /// Number of seeds (draws per point).
        count: u64,
    },
    /// An explicit seed list (the historical quick presets).
    List(Vec<u64>),
}

/// The spec's seed block: the scenario-seed policy plus the named stream-seed derivation
/// rule (see [`baselines::StreamDerivation`]) arms with internal randomness use.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedSpec {
    /// How the base (scenario) seeds are produced.
    pub policy: SeedPolicy,
    /// The derivation of arm-internal stream seeds from base seeds. Pinned by name in the
    /// wire format so a replay under a different rule is refused instead of silently
    /// producing different benchmark columns.
    pub stream_derivation: StreamDerivation,
}

impl SeedSpec {
    /// An explicit seed list under the default stream derivation.
    pub fn list(seeds: impl Into<Vec<u64>>) -> Self {
        Self {
            policy: SeedPolicy::List(seeds.into()),
            stream_derivation: StreamDerivation::default(),
        }
    }

    /// The range `0..count` under the default stream derivation.
    pub fn count(count: u64) -> Self {
        Self {
            policy: SeedPolicy::Range { start: 0, count },
            stream_derivation: StreamDerivation::default(),
        }
    }

    /// Number of scenario seeds (draws per point) without materializing them.
    pub fn len(&self) -> u64 {
        match &self.policy {
            SeedPolicy::Range { count, .. } => *count,
            SeedPolicy::List(seeds) => seeds.len() as u64,
        }
    }

    /// Whether the policy yields no seeds (invalid; rejected by validation).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the seed values, in order.
    pub fn values(&self) -> Vec<u64> {
        match &self.policy {
            SeedPolicy::Range { start, count } => (*start..start + count).collect(),
            SeedPolicy::List(seeds) => seeds.clone(),
        }
    }

    fn validate(&self, path: &str) -> Result<(), SpecError> {
        match &self.policy {
            SeedPolicy::Range { start, count } => {
                if *count == 0 {
                    return Err(SpecError::invalid(format!("{path}.count"), "must be at least 1"));
                }
                if *count > MAX_SEEDS {
                    return Err(SpecError::invalid(
                        format!("{path}.count"),
                        format!(
                            "at most {MAX_SEEDS} seeds per spec — shard larger sweeps \
                             into seed sub-ranges with `fedopt run --shards N` or \
                             `fedopt shard split`"
                        ),
                    ));
                }
                if start.checked_add(*count).map_or(true, |end| end > MAX_EXACT_INT) {
                    return Err(SpecError::invalid(
                        path,
                        "seed range must stay within the exact JSON integer range (2^53)",
                    ));
                }
            }
            SeedPolicy::List(seeds) => {
                if seeds.is_empty() {
                    return Err(SpecError::invalid(format!("{path}.list"), "must not be empty"));
                }
                if seeds.len() as u64 > MAX_SEEDS {
                    return Err(SpecError::invalid(
                        format!("{path}.list"),
                        format!(
                            "at most {MAX_SEEDS} seeds per spec — shard larger sweeps \
                             into seed sub-lists with `fedopt run --shards N` or \
                             `fedopt shard split`"
                        ),
                    ));
                }
                if seeds.iter().any(|&s| s > MAX_EXACT_INT) {
                    return Err(SpecError::invalid(
                        format!("{path}.list"),
                        "seeds must stay within the exact JSON integer range (2^53)",
                    ));
                }
            }
        }
        Ok(())
    }

    fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = Vec::new();
        match &self.policy {
            SeedPolicy::Range { start, count } => {
                members.push(("start".to_string(), Json::uint(*start)));
                members.push(("count".to_string(), Json::uint(*count)));
            }
            SeedPolicy::List(seeds) => {
                members.push((
                    "list".to_string(),
                    Json::Arr(seeds.iter().map(|&s| Json::uint(s)).collect()),
                ));
            }
        }
        members.push((
            "stream_derivation".to_string(),
            Json::Str(self.stream_derivation.name().to_string()),
        ));
        Json::Obj(members)
    }

    fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let obj = Obj::new(v, path, &["start", "count", "list", "stream_derivation"])?;
        let policy = match (obj.get("list"), obj.get("count")) {
            (Some(_), None) => SeedPolicy::List(obj.u64_array("list")?),
            (None, Some(_)) => SeedPolicy::Range {
                start: obj.opt_u64("start")?.unwrap_or(0),
                count: obj.u64("count")?,
            },
            _ => {
                return Err(SpecError::invalid(
                    path,
                    "seeds need exactly one of `list` or `count` (+ optional `start`)",
                ))
            }
        };
        if matches!(policy, SeedPolicy::List(_)) && obj.get("start").is_some() {
            return Err(SpecError::invalid(
                obj.path_of("start"),
                "`start` only applies to range seed policies",
            ));
        }
        let derivation_name = obj.str("stream_derivation")?;
        let stream_derivation = StreamDerivation::from_name(derivation_name).ok_or_else(|| {
            SpecError::invalid(
                obj.path_of("stream_derivation"),
                format!("unknown stream derivation {derivation_name:?}"),
            )
        })?;
        let spec = Self { policy, stream_derivation };
        spec.validate(path)?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------------

/// Which [`SolverConfig`] the overrides start from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolverPreset {
    /// [`SolverConfig::default`] — the paper-faithful tolerances.
    #[default]
    Default,
    /// [`SolverConfig::fast`] — the looser quick-preset tolerances.
    Fast,
}

impl SolverPreset {
    const fn name(self) -> &'static str {
        match self {
            Self::Default => "default",
            Self::Fast => "fast",
        }
    }

    fn base(self) -> SolverConfig {
        match self {
            Self::Default => SolverConfig::default(),
            Self::Fast => SolverConfig::fast(),
        }
    }
}

/// Serializable solver settings: a preset plus optional tolerance overrides.
///
/// The warm-start switch is *not* here: it is an engine-level decision
/// ([`EngineSpec::warm_start`]) because the sweep engine overrides every arm's solver
/// config with its own flag to keep one sweep uniformly cold or warm.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SolverSpec {
    /// The starting configuration.
    pub preset: SolverPreset,
    /// Override of [`SolverConfig::outer_max_iter`].
    pub outer_max_iter: Option<usize>,
    /// Override of [`SolverConfig::outer_tol`].
    pub outer_tol: Option<f64>,
    /// Override of [`SolverConfig::mu_tol`].
    pub mu_tol: Option<f64>,
    /// Override of [`SolverConfig::scalar_tol`].
    pub scalar_tol: Option<f64>,
    /// Override of [`SolverConfig::feasibility_tol`].
    pub feasibility_tol: Option<f64>,
    /// Override of [`SolverConfig::bandwidth_floor_hz`].
    pub bandwidth_floor_hz: Option<f64>,
    /// Override of [`SolverConfig::polish_with_reference`].
    pub polish_with_reference: Option<bool>,
    /// Override of [`SolverConfig::warm_rmin_tol`].
    pub warm_rmin_tol: Option<f64>,
}

impl SolverSpec {
    /// The fast preset with no overrides.
    pub fn fast() -> Self {
        Self { preset: SolverPreset::Fast, ..Self::default() }
    }

    /// Resolves the preset and overrides into a concrete [`SolverConfig`].
    pub fn resolve(&self) -> SolverConfig {
        let mut config = self.preset.base();
        if let Some(v) = self.outer_max_iter {
            config.outer_max_iter = v;
        }
        if let Some(v) = self.outer_tol {
            config.outer_tol = v;
        }
        if let Some(v) = self.mu_tol {
            config.mu_tol = v;
        }
        if let Some(v) = self.scalar_tol {
            config.scalar_tol = v;
        }
        if let Some(v) = self.feasibility_tol {
            config.feasibility_tol = v;
        }
        if let Some(v) = self.bandwidth_floor_hz {
            config.bandwidth_floor_hz = v;
        }
        if let Some(v) = self.polish_with_reference {
            config.polish_with_reference = v;
        }
        if let Some(v) = self.warm_rmin_tol {
            config.warm_rmin_tol = v;
        }
        config
    }

    pub(crate) fn validate(&self, path: &str) -> Result<(), SpecError> {
        for (name, value) in [
            ("outer_tol", self.outer_tol),
            ("mu_tol", self.mu_tol),
            ("scalar_tol", self.scalar_tol),
            ("feasibility_tol", self.feasibility_tol),
            ("bandwidth_floor_hz", self.bandwidth_floor_hz),
            ("warm_rmin_tol", self.warm_rmin_tol),
        ] {
            if let Some(v) = value {
                if !(v.is_finite() && v > 0.0) {
                    return Err(SpecError::invalid(
                        format!("{path}.{name}"),
                        "must be a positive finite number",
                    ));
                }
            }
        }
        if self.outer_max_iter == Some(0) {
            return Err(SpecError::invalid(format!("{path}.outer_max_iter"), "must be at least 1"));
        }
        Ok(())
    }

    pub(crate) fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> =
            vec![("preset".to_string(), Json::Str(self.preset.name().to_string()))];
        let mut push = |key: &str, value: Option<Json>| {
            if let Some(v) = value {
                members.push((key.to_string(), v));
            }
        };
        push("outer_max_iter", self.outer_max_iter.map(|v| Json::uint(v as u64)));
        push("outer_tol", self.outer_tol.map(Json::Num));
        push("mu_tol", self.mu_tol.map(Json::Num));
        push("scalar_tol", self.scalar_tol.map(Json::Num));
        push("feasibility_tol", self.feasibility_tol.map(Json::Num));
        push("bandwidth_floor_hz", self.bandwidth_floor_hz.map(Json::Num));
        push("polish_with_reference", self.polish_with_reference.map(Json::Bool));
        push("warm_rmin_tol", self.warm_rmin_tol.map(Json::Num));
        Json::Obj(members)
    }

    pub(crate) fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let obj = Obj::new(
            v,
            path,
            &[
                "preset",
                "outer_max_iter",
                "outer_tol",
                "mu_tol",
                "scalar_tol",
                "feasibility_tol",
                "bandwidth_floor_hz",
                "polish_with_reference",
                "warm_rmin_tol",
            ],
        )?;
        let preset = match obj.str("preset")? {
            "default" => SolverPreset::Default,
            "fast" => SolverPreset::Fast,
            other => {
                return Err(SpecError::invalid(
                    obj.path_of("preset"),
                    format!("unknown solver preset {other:?}"),
                ))
            }
        };
        let spec = Self {
            preset,
            outer_max_iter: obj.opt_usize("outer_max_iter")?,
            outer_tol: obj.opt_f64("outer_tol")?,
            mu_tol: obj.opt_f64("mu_tol")?,
            scalar_tol: obj.opt_f64("scalar_tol")?,
            feasibility_tol: obj.opt_f64("feasibility_tol")?,
            bandwidth_floor_hz: obj.opt_f64("bandwidth_floor_hz")?,
            polish_with_reference: obj.opt_bool("polish_with_reference")?,
            warm_rmin_tol: obj.opt_f64("warm_rmin_tol")?,
        };
        spec.validate(path)?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Serializable engine options. Unset fields keep [`SweepEngine::new`]'s defaults
/// (all cores / environment overrides).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EngineSpec {
    /// Worker thread count ([`SweepEngine::with_threads`]).
    pub threads: Option<usize>,
    /// Warm-start continuation default for this spec. An explicit
    /// [`crate::engine::WARM_START_ENV`] environment setting still wins (so
    /// `FEDOPT_WARM_START=0` forces any spec cold), but when the environment is silent
    /// this field decides — the paper presets default it on.
    pub warm_start: Option<bool>,
    /// Scenario-build sharing across the arms of a cell-group
    /// ([`SweepEngine::with_scenario_sharing`]).
    pub scenario_sharing: Option<bool>,
    /// Streaming reduction ([`SweepEngine::with_streaming_reduction`]).
    pub streaming: Option<bool>,
    /// Seeds per streaming chunk ([`SweepEngine::with_seed_chunk`]).
    pub seed_chunk: Option<usize>,
    /// Retries per failed fleet shard before the shard counts as failed
    /// ([`crate::shard::FleetOptions::max_retries`]). `0` disables retries. Only
    /// consulted by sharded (`--shards`) runs; an explicit `--shard-retries` CLI flag
    /// wins over this field. Cache keys ignore it — retry policy cannot change results.
    pub shard_retries: Option<u64>,
    /// Per-shard wall-clock timeout in seconds for subprocess fleet workers
    /// ([`crate::shard::SubprocessRunner`]). Must be at least 1. Only consulted by
    /// sharded runs; an explicit `--shard-timeout` CLI flag wins over this field. Cache
    /// keys ignore it — a timeout cannot change what a surviving shard computes.
    pub shard_timeout_s: Option<u64>,
}

impl EngineSpec {
    /// Builds the engine these options describe. Precedence for the warm-start switch:
    /// explicit environment setting > spec field > off.
    pub fn to_engine(&self) -> SweepEngine {
        let mut engine = match self.threads {
            Some(n) => SweepEngine::with_threads(n),
            None => SweepEngine::new(),
        };
        if let Some(share) = self.scenario_sharing {
            engine = engine.with_scenario_sharing(share);
        }
        if let Some(streaming) = self.streaming {
            engine = engine.with_streaming_reduction(streaming);
        }
        if let Some(chunk) = self.seed_chunk {
            engine = engine.with_seed_chunk(chunk);
        }
        // `SweepEngine::new` already folded the environment in; only a *silent*
        // environment lets the spec's default take effect.
        if crate::engine::warm_start_env().is_none() {
            if let Some(warm) = self.warm_start {
                engine = engine.with_warm_start(warm);
            }
        }
        engine
    }

    fn validate(&self, path: &str) -> Result<(), SpecError> {
        if self.threads == Some(0) {
            return Err(SpecError::invalid(format!("{path}.threads"), "must be at least 1"));
        }
        if self.seed_chunk == Some(0) {
            return Err(SpecError::invalid(format!("{path}.seed_chunk"), "must be at least 1"));
        }
        if self.shard_timeout_s == Some(0) {
            return Err(SpecError::invalid(
                format!("{path}.shard_timeout_s"),
                "must be at least 1",
            ));
        }
        Ok(())
    }

    fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = Vec::new();
        let mut push = |key: &str, value: Option<Json>| {
            if let Some(v) = value {
                members.push((key.to_string(), v));
            }
        };
        push("threads", self.threads.map(|v| Json::uint(v as u64)));
        push("warm_start", self.warm_start.map(Json::Bool));
        push("scenario_sharing", self.scenario_sharing.map(Json::Bool));
        push("streaming", self.streaming.map(Json::Bool));
        push("seed_chunk", self.seed_chunk.map(|v| Json::uint(v as u64)));
        push("shard_retries", self.shard_retries.map(Json::uint));
        push("shard_timeout_s", self.shard_timeout_s.map(Json::uint));
        Json::Obj(members)
    }

    fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let obj = Obj::new(
            v,
            path,
            &[
                "threads",
                "warm_start",
                "scenario_sharing",
                "streaming",
                "seed_chunk",
                "shard_retries",
                "shard_timeout_s",
            ],
        )?;
        let spec = Self {
            threads: obj.opt_usize("threads")?,
            warm_start: obj.opt_bool("warm_start")?,
            scenario_sharing: obj.opt_bool("scenario_sharing")?,
            streaming: obj.opt_bool("streaming")?,
            seed_chunk: obj.opt_usize("seed_chunk")?,
            shard_retries: obj.opt_u64("shard_retries")?,
            shard_timeout_s: obj.opt_u64("shard_timeout_s")?,
        };
        spec.validate(path)?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Which aggregate metric a report plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Mean total energy in joules.
    Energy,
    /// Mean total completion time in seconds.
    Time,
}

impl Metric {
    const fn name(self) -> &'static str {
        match self {
            Self::Energy => "energy",
            Self::Time => "time",
        }
    }
}

/// One figure (or sub-figure) rendered from the evaluated grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportSpec {
    /// Identifier matching the paper, e.g. `"fig2a"`.
    pub id: String,
    /// The plotted metric.
    pub metric: Metric,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
}

impl ReportSpec {
    /// A report description.
    pub fn new(id: &str, metric: Metric, title: &str, x_label: &str) -> Self {
        Self { id: id.to_string(), metric, title: title.to_string(), x_label: x_label.to_string() }
    }

    /// Renders this report from an evaluated grid.
    pub fn render(&self, result: &SweepResult) -> FigureReport {
        match self.metric {
            Metric::Energy => result.energy_report(&self.id, &self.title, &self.x_label),
            Metric::Time => result.time_report(&self.id, &self.title, &self.x_label),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("metric", Json::Str(self.metric.name().to_string())),
            ("title", Json::Str(self.title.clone())),
            ("x_label", Json::Str(self.x_label.clone())),
        ])
    }

    fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let obj = Obj::new(v, path, &["id", "metric", "title", "x_label"])?;
        let metric = match obj.str("metric")? {
            "energy" => Metric::Energy,
            "time" => Metric::Time,
            other => {
                return Err(SpecError::invalid(
                    obj.path_of("metric"),
                    format!("unknown metric {other:?}"),
                ))
            }
        };
        Ok(Self {
            id: obj.str("id")?.to_string(),
            metric,
            title: obj.str("title")?.to_string(),
            x_label: obj.str("x_label")?.to_string(),
        })
    }
}

// ---------------------------------------------------------------------------
// Round simulation
// ---------------------------------------------------------------------------

/// Cap on the number of simulated global rounds per spec.
pub const MAX_SIM_ROUNDS: u32 = 100_000;

/// The closed set of per-round allocation/selection policies the round simulator
/// compares — the round-by-round counterpart of [`ArmKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum RoundPolicy {
    /// Re-runs Algorithm 2 on each round's redrawn channel (warm-started across rounds
    /// when the engine's continuation is on). Every device that survives dropout
    /// participates.
    ReSolve {
        /// The objective weights `(w1, w2)`.
        weights: Weights,
    },
    /// Solves Algorithm 2 once on the base (round-0) channel and reuses that allocation
    /// for every round — what a deployment that never re-optimizes pays under fading.
    Static {
        /// The objective weights `(w1, w2)`.
        weights: Weights,
    },
    /// FedAECS-style accuracy-constrained selection: greedily admits the
    /// cheapest-energy-per-accuracy devices (accuracy proxy `ε_n = ln(1 + μ·D_n)`)
    /// until the round accuracy `Γ = ln(1 + Σ ε_n)` reaches `epsilon`, skipping devices
    /// whose round time exceeds `t_max_s`. Runs on the equal-split allocation.
    FedAecs {
        /// Required round accuracy `ε₀` (on the `Γ` scale).
        epsilon: f64,
        /// Accuracy-proxy curvature `μ` in `ε_n = ln(1 + μ·D_n)`.
        mu: f64,
        /// Per-device round-time cap in seconds (`None` disables the cap).
        t_max_s: Option<f64>,
    },
    /// ELASTIC-style (Yu et al.) joint selection with a **sequential-upload** wall-clock
    /// model: each device uploads alone over the full bandwidth, waiting its
    /// `t_wait` recurrence turn; a device is selected when its energy score
    /// `α·(E_n + 1) − 1 ≤ 0` (smaller `alpha` admits more devices).
    Elastic {
        /// Energy/participation trade-off `α ∈ (0, 1]`.
        alpha: f64,
    },
}

impl RoundPolicy {
    /// The stable wire name of this policy kind.
    pub const fn name(&self) -> &'static str {
        match self {
            Self::ReSolve { .. } => "re_solve",
            Self::Static { .. } => "static",
            Self::FedAecs { .. } => "fedaecs",
            Self::Elastic { .. } => "elastic",
        }
    }
}

/// One column of the round simulation: a policy plus an optional display label.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPolicySpec {
    /// The policy.
    pub policy: RoundPolicy,
    /// Overrides the policy's generated column label.
    pub label: Option<String>,
}

impl RoundPolicySpec {
    /// A plain policy column (no label override).
    pub fn new(policy: RoundPolicy) -> Self {
        Self { policy, label: None }
    }

    /// This policy with a display label.
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The display label: the override, or the policy's wire name.
    pub fn display_label(&self) -> &str {
        self.label.as_deref().unwrap_or(self.policy.name())
    }

    pub(crate) fn validate(&self, path: &str) -> Result<(), SpecError> {
        match &self.policy {
            RoundPolicy::ReSolve { .. } | RoundPolicy::Static { .. } => {}
            RoundPolicy::FedAecs { epsilon, mu, t_max_s } => {
                for (name, v) in [("epsilon", *epsilon), ("mu", *mu)] {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(SpecError::invalid(
                            format!("{path}.{name}"),
                            "must be a positive finite number",
                        ));
                    }
                }
                if let Some(t) = t_max_s {
                    if !(t.is_finite() && *t > 0.0) {
                        return Err(SpecError::invalid(
                            format!("{path}.t_max_s"),
                            "must be a positive finite number of seconds",
                        ));
                    }
                }
            }
            RoundPolicy::Elastic { alpha } => {
                if !(alpha.is_finite() && *alpha > 0.0 && *alpha <= 1.0) {
                    return Err(SpecError::invalid(format!("{path}.alpha"), "must be in (0, 1]"));
                }
            }
        }
        Ok(())
    }

    pub(crate) fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> =
            vec![("kind".to_string(), Json::Str(self.policy.name().to_string()))];
        match &self.policy {
            RoundPolicy::ReSolve { weights } | RoundPolicy::Static { weights } => {
                members.push(("w1".to_string(), Json::Num(weights.energy())));
                members.push(("w2".to_string(), Json::Num(weights.time())));
            }
            RoundPolicy::FedAecs { epsilon, mu, t_max_s } => {
                members.push(("epsilon".to_string(), Json::Num(*epsilon)));
                members.push(("mu".to_string(), Json::Num(*mu)));
                if let Some(t) = t_max_s {
                    members.push(("t_max_s".to_string(), Json::Num(*t)));
                }
            }
            RoundPolicy::Elastic { alpha } => {
                members.push(("alpha".to_string(), Json::Num(*alpha)));
            }
        }
        if let Some(label) = &self.label {
            members.push(("label".to_string(), Json::Str(label.clone())));
        }
        Json::Obj(members)
    }

    pub(crate) fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        // Same per-kind strictness as `ArmSpec::from_json`: peek the discriminator, then
        // check the full key set against exactly that kind's payload.
        let kind_name = Obj::any(v, path)?.str("kind")?.to_string();
        fn with<'x>(extra: &[&'x str]) -> Vec<&'x str> {
            let mut allowed = vec!["kind", "label"];
            allowed.extend_from_slice(extra);
            allowed
        }
        let weights_of = |obj: &Obj<'_>| -> Result<Weights, SpecError> {
            let (w1, w2) = (obj.f64("w1")?, obj.f64("w2")?);
            Weights::new(w1, w2)
                .map_err(|e| SpecError::invalid(path.to_string(), format!("invalid weights: {e}")))
        };
        let (policy, obj) = match kind_name.as_str() {
            "re_solve" => {
                let obj = Obj::new(v, path, &with(&["w1", "w2"]))?;
                (RoundPolicy::ReSolve { weights: weights_of(&obj)? }, obj)
            }
            "static" => {
                let obj = Obj::new(v, path, &with(&["w1", "w2"]))?;
                (RoundPolicy::Static { weights: weights_of(&obj)? }, obj)
            }
            "fedaecs" => {
                let obj = Obj::new(v, path, &with(&["epsilon", "mu", "t_max_s"]))?;
                (
                    RoundPolicy::FedAecs {
                        epsilon: obj.f64("epsilon")?,
                        mu: obj.f64("mu")?,
                        t_max_s: obj.opt_f64("t_max_s")?,
                    },
                    obj,
                )
            }
            "elastic" => {
                let obj = Obj::new(v, path, &with(&["alpha"]))?;
                (RoundPolicy::Elastic { alpha: obj.f64("alpha")? }, obj)
            }
            other => {
                return Err(SpecError::invalid(
                    format!("{path}.kind"),
                    format!("unknown round policy kind {other:?}"),
                ))
            }
        };
        let spec = Self { policy, label: obj.opt_str("label")?.map(str::to_string) };
        spec.validate(path)?;
        Ok(spec)
    }
}

/// The straggler model applied every round, per device, from the straggler stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerSpec {
    /// Probability a device misses the round entirely (no training, no cost).
    pub dropout: f64,
    /// Probability a participating device straggles (its computation slows down).
    pub slow: f64,
    /// Computation time/energy multiplier for a straggling device (`≥ 1`).
    pub slow_factor: f64,
}

impl Default for StragglerSpec {
    fn default() -> Self {
        Self { dropout: 0.0, slow: 0.0, slow_factor: 1.0 }
    }
}

impl StragglerSpec {
    pub(crate) fn validate(&self, path: &str) -> Result<(), SpecError> {
        for (name, v) in [("dropout", self.dropout), ("slow", self.slow)] {
            if !(v.is_finite() && (0.0..1.0).contains(&v)) {
                return Err(SpecError::invalid(
                    format!("{path}.{name}"),
                    "must be a probability in [0, 1)",
                ));
            }
        }
        if !(self.slow_factor.is_finite() && self.slow_factor >= 1.0) {
            return Err(SpecError::invalid(
                format!("{path}.slow_factor"),
                "must be a finite multiplier of at least 1",
            ));
        }
        Ok(())
    }

    pub(crate) fn to_json(self) -> Json {
        Json::obj([
            ("dropout", Json::Num(self.dropout)),
            ("slow", Json::Num(self.slow)),
            ("slow_factor", Json::Num(self.slow_factor)),
        ])
    }

    pub(crate) fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let obj = Obj::new(v, path, &["dropout", "slow", "slow_factor"])?;
        let default = Self::default();
        let spec = Self {
            dropout: obj.opt_f64("dropout")?.unwrap_or(default.dropout),
            slow: obj.opt_f64("slow")?.unwrap_or(default.slow),
            slow_factor: obj.opt_f64("slow_factor")?.unwrap_or(default.slow_factor),
        };
        spec.validate(path)?;
        Ok(spec)
    }
}

/// The synthetic training task the round simulator learns on (see
/// [`fedsim::SyntheticConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTrainingSpec {
    /// Synthetic samples per device.
    pub samples_per_device: u64,
    /// Local SGD learning rate.
    pub learning_rate: f64,
}

impl Default for SimTrainingSpec {
    fn default() -> Self {
        Self { samples_per_device: 60, learning_rate: 0.5 }
    }
}

impl SimTrainingSpec {
    pub(crate) fn validate(&self, path: &str) -> Result<(), SpecError> {
        if self.samples_per_device == 0 {
            return Err(SpecError::invalid(
                format!("{path}.samples_per_device"),
                "must be at least 1",
            ));
        }
        if self.samples_per_device > 1_000_000 {
            return Err(SpecError::invalid(
                format!("{path}.samples_per_device"),
                "capped at 1000000 synthetic samples per device",
            ));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(SpecError::invalid(
                format!("{path}.learning_rate"),
                "must be a positive finite number",
            ));
        }
        Ok(())
    }

    pub(crate) fn to_json(self) -> Json {
        Json::obj([
            ("samples_per_device", Json::uint(self.samples_per_device)),
            ("learning_rate", Json::Num(self.learning_rate)),
        ])
    }

    pub(crate) fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let obj = Obj::new(v, path, &["samples_per_device", "learning_rate"])?;
        let default = Self::default();
        let spec = Self {
            samples_per_device: obj
                .opt_u64("samples_per_device")?
                .unwrap_or(default.samples_per_device),
            learning_rate: obj.opt_f64("learning_rate")?.unwrap_or(default.learning_rate),
        };
        spec.validate(path)?;
        Ok(spec)
    }
}

/// Identity of the rendered round-trajectory report.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundsReportSpec {
    /// Identifier, e.g. `"rounds-quick"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
}

impl RoundsReportSpec {
    pub(crate) fn validate(&self, path: &str) -> Result<(), SpecError> {
        if self.id.is_empty() {
            return Err(SpecError::invalid(format!("{path}.id"), "must not be empty"));
        }
        Ok(())
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj([("id", Json::Str(self.id.clone())), ("title", Json::Str(self.title.clone()))])
    }

    pub(crate) fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let obj = Obj::new(v, path, &["id", "title"])?;
        let spec = Self { id: obj.str("id")?.to_string(), title: obj.str("title")?.to_string() };
        spec.validate(path)?;
        Ok(spec)
    }
}

/// The optional round-simulation section of a spec, run by `fedopt sim` (the
/// `experiments::rounds` subsystem). When present, the spec's axis must hold exactly one
/// value (the single scenario point simulated) and the sweep `arms` may be empty.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundsSpec {
    /// Number of simulated global rounds `T`.
    pub rounds: u32,
    /// Per-round log-normal block-fading standard deviation in dB (`0` freezes the
    /// channel at its base realisation).
    pub refade_db: f64,
    /// The named derivation of per-round channel/straggler stream seeds. Pinned in the
    /// wire format; must be a round-indexed rule
    /// ([`StreamDerivation::RoundChannelFnv`]).
    pub channel_stream: StreamDerivation,
    /// The straggler/dropout model.
    pub straggler: StragglerSpec,
    /// The synthetic training task.
    pub training: SimTrainingSpec,
    /// The policies compared, in column order.
    pub policies: Vec<RoundPolicySpec>,
    /// Identity of the rendered trajectory report.
    pub report: RoundsReportSpec,
}

impl RoundsSpec {
    pub(crate) fn validate(&self, path: &str) -> Result<(), SpecError> {
        if self.rounds == 0 {
            return Err(SpecError::invalid(format!("{path}.rounds"), "must be at least 1"));
        }
        if self.rounds > MAX_SIM_ROUNDS {
            return Err(SpecError::invalid(
                format!("{path}.rounds"),
                format!("capped at {MAX_SIM_ROUNDS} simulated rounds"),
            ));
        }
        if !(self.refade_db.is_finite() && self.refade_db >= 0.0) {
            return Err(SpecError::invalid(
                format!("{path}.refade_db"),
                "must be finite and non-negative",
            ));
        }
        if self.channel_stream.derive_round(0, 0) == self.channel_stream.derive_round(0, 1) {
            return Err(SpecError::invalid(
                format!("{path}.channel_stream"),
                format!(
                    "must be a round-indexed stream derivation (e.g. {:?}); {:?} maps \
                     every round to one stream",
                    StreamDerivation::RoundChannelFnv.name(),
                    self.channel_stream.name()
                ),
            ));
        }
        self.straggler.validate(&format!("{path}.straggler"))?;
        self.training.validate(&format!("{path}.training"))?;
        if self.policies.is_empty() {
            return Err(SpecError::invalid(format!("{path}.policies"), "must not be empty"));
        }
        for (i, policy) in self.policies.iter().enumerate() {
            policy.validate(&format!("{path}.policies[{i}]"))?;
        }
        self.report.validate(&format!("{path}.report"))?;
        Ok(())
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj([
            ("rounds", Json::uint(u64::from(self.rounds))),
            ("refade_db", Json::Num(self.refade_db)),
            ("channel_stream", Json::Str(self.channel_stream.name().to_string())),
            ("straggler", self.straggler.to_json()),
            ("training", self.training.to_json()),
            ("policies", Json::Arr(self.policies.iter().map(RoundPolicySpec::to_json).collect())),
            ("report", self.report.to_json()),
        ])
    }

    pub(crate) fn from_json(v: &Json, path: &str) -> Result<Self, SpecError> {
        let obj = Obj::new(
            v,
            path,
            &[
                "rounds",
                "refade_db",
                "channel_stream",
                "straggler",
                "training",
                "policies",
                "report",
            ],
        )?;
        let channel_stream = match obj.opt_str("channel_stream")? {
            None => StreamDerivation::RoundChannelFnv,
            Some(name) => StreamDerivation::from_name(name).ok_or_else(|| {
                SpecError::invalid(
                    obj.path_of("channel_stream"),
                    format!("unknown stream derivation {name:?}"),
                )
            })?,
        };
        let straggler = match obj.get("straggler") {
            Some(s) => StragglerSpec::from_json(s, &obj.path_of("straggler"))?,
            None => StragglerSpec::default(),
        };
        let training = match obj.get("training") {
            Some(t) => SimTrainingSpec::from_json(t, &obj.path_of("training"))?,
            None => SimTrainingSpec::default(),
        };
        let policies = obj
            .array("policies")?
            .iter()
            .enumerate()
            .map(|(i, p)| RoundPolicySpec::from_json(p, &format!("{path}.policies[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let spec = Self {
            rounds: obj.u64("rounds")?.try_into().map_err(|_| {
                SpecError::invalid(obj.path_of("rounds"), "must fit in a 32-bit round count")
            })?,
            refade_db: obj.opt_f64("refade_db")?.unwrap_or(0.0),
            channel_stream,
            straggler,
            training,
            policies,
            report: RoundsReportSpec::from_json(obj.req("report")?, &obj.path_of("report"))?,
        };
        spec.validate(path)?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// The spec
// ---------------------------------------------------------------------------

/// A complete, serializable description of one sweep experiment. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Wire-format version; must equal [`SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Short machine-friendly identifier (e.g. `"fig2"`).
    pub id: String,
    /// Human-readable description of what the sweep shows.
    pub description: String,
    /// The sweep axis.
    pub axis: AxisSpec,
    /// Scenario template shared by every point (a patch over the paper defaults).
    pub scenario: ScenarioSpec,
    /// The schemes compared, in column order.
    pub arms: Vec<ArmSpec>,
    /// Scenario seeds and stream-seed derivation.
    pub seeds: SeedSpec,
    /// Solver preset and overrides.
    pub solver: SolverSpec,
    /// Engine options.
    pub engine: EngineSpec,
    /// Reports rendered from the evaluated grid, in output order.
    pub reports: Vec<ReportSpec>,
    /// Optional round-simulation section, run by `fedopt sim` instead of the sweep
    /// engine. When present, `arms` may be empty and the axis must hold one value.
    pub rounds: Option<RoundsSpec>,
}

/// The outcome of running a spec: the raw evaluated grid plus the rendered reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecRun {
    /// The evaluated grid (aggregates + work counters).
    pub result: SweepResult,
    /// The spec's reports, rendered in order.
    pub reports: Vec<FigureReport>,
}

impl ExperimentSpec {
    /// A minimal spec skeleton: one axis, no arms yet, one seed, default solver/engine,
    /// no reports. Useful as a starting point for hand-built experiments.
    pub fn new(id: &str, axis: AxisSpec) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            id: id.to_string(),
            description: String::new(),
            axis,
            scenario: ScenarioSpec::default(),
            arms: Vec::new(),
            seeds: SeedSpec::count(1),
            solver: SolverSpec::default(),
            engine: EngineSpec::default(),
            reports: Vec::new(),
            rounds: None,
        }
    }

    /// Replaces the seed policy with the range `0..count` (the CLI's `--seeds N`).
    pub fn override_seed_count(&mut self, count: u64) {
        self.seeds.policy = SeedPolicy::Range { start: 0, count };
    }

    /// Validates every component without compiling the grid.
    ///
    /// # Errors
    ///
    /// The first [`SpecError::Invalid`] found, with the offending field's path.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(SpecError::invalid(
                "schema_version",
                format!("expected {SCHEMA_VERSION}, got {}", self.schema_version),
            ));
        }
        if self.id.is_empty() {
            return Err(SpecError::invalid("id", "must not be empty"));
        }
        if self.axis.values.is_empty() {
            return Err(SpecError::invalid("axis.values", "must not be empty"));
        }
        for (i, &x) in self.axis.values.iter().enumerate() {
            self.axis.kind.check(x, &format!("axis.values[{i}]"))?;
        }
        self.scenario.validate("scenario")?;
        if let Some(rounds) = &self.rounds {
            rounds.validate("rounds")?;
            if self.axis.values.len() != 1 {
                return Err(SpecError::invalid(
                    "axis.values",
                    format!(
                        "a round-simulation spec pins one scenario point, so the axis \
                         must hold exactly one value (got {})",
                        self.axis.values.len()
                    ),
                ));
            }
        }
        if self.arms.is_empty() && self.rounds.is_none() {
            return Err(SpecError::invalid("arms", "must not be empty"));
        }
        for (i, arm) in self.arms.iter().enumerate() {
            arm.validate(&format!("arms[{i}]"))?;
            let needs_axis_deadline = matches!(
                arm.kind,
                ArmKind::DeadlineProposed { deadline: DeadlineSpec::Axis }
                    | ArmKind::CommOnly
                    | ArmKind::CompOnly
            );
            if needs_axis_deadline && self.axis.kind != AxisKind::DeadlineS {
                return Err(SpecError::invalid(
                    format!("arms[{i}]"),
                    format!(
                        "arm kind `{}` reads its deadline from the axis, which requires a \
                         `deadline_s` axis (got `{}`)",
                        arm.kind.name(),
                        self.axis.kind.name()
                    ),
                ));
            }
        }
        self.seeds.validate("seeds")?;
        self.solver.validate("solver")?;
        self.engine.validate("engine")?;
        Ok(())
    }

    /// Compiles the spec into the imperative [`SweepGrid`] the engine evaluates — the
    /// same grid the historical figure modules built by hand.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] when validation fails.
    pub fn grid(&self) -> Result<SweepGrid, SpecError> {
        self.validate()?;
        if self.arms.is_empty() {
            return Err(SpecError::invalid(
                "arms",
                "this spec has no sweep arms; round-simulation specs run with `fedopt sim`",
            ));
        }
        let solver = self.solver.resolve();
        let template = self.scenario.apply(ScenarioBuilder::paper_default());
        let mut grid = SweepGrid::new(self.seeds.values());
        for &x in &self.axis.values {
            grid = grid.point(x, self.axis.kind.apply(template.clone(), x));
        }
        for arm in &self.arms {
            grid.arms.push(arm.instantiate(solver));
        }
        Ok(grid)
    }

    /// Runs the spec on the engine its [`EngineSpec`] describes.
    ///
    /// # Errors
    ///
    /// Validation errors, or any sweep error from the engine.
    pub fn run(&self) -> Result<SpecRun, SpecError> {
        self.run_with_engine(&self.engine.to_engine())
    }

    /// Runs the spec on an explicit engine (thread-count and warm-start control for
    /// tests; the spec's own [`EngineSpec`] is ignored).
    ///
    /// # Errors
    ///
    /// Validation errors, or any sweep error from the engine.
    pub fn run_with_engine(&self, engine: &SweepEngine) -> Result<SpecRun, SpecError> {
        let result = engine.run_spec(self)?;
        let reports = self.render_reports(&result);
        Ok(SpecRun { result, reports })
    }

    /// Renders the spec's reports from an already-evaluated grid.
    pub fn render_reports(&self, result: &SweepResult) -> Vec<FigureReport> {
        self.reports.iter().map(|r| r.render(result)).collect()
    }

    /// The spec as a JSON value (deterministic member order).
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("schema_version".to_string(), Json::uint(self.schema_version)),
            ("id".to_string(), Json::Str(self.id.clone())),
            ("description".to_string(), Json::Str(self.description.clone())),
            ("axis".to_string(), self.axis.to_json()),
            ("scenario".to_string(), self.scenario.to_json()),
            ("arms".to_string(), Json::Arr(self.arms.iter().map(ArmSpec::to_json).collect())),
            ("seeds".to_string(), self.seeds.to_json()),
            ("solver".to_string(), self.solver.to_json()),
            ("engine".to_string(), self.engine.to_json()),
            (
                "reports".to_string(),
                Json::Arr(self.reports.iter().map(ReportSpec::to_json).collect()),
            ),
        ];
        // Appended last and omitted when unset, so sweep-only specs keep their bytes.
        if let Some(rounds) = &self.rounds {
            members.push(("rounds".to_string(), rounds.to_json()));
        }
        Json::Obj(members)
    }

    /// The canonical serialized form (pretty-printed, trailing newline) — byte-stable for
    /// a given spec, and lossless: `from_json_str(to_json_string(s)) == s`.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parses a spec from a JSON value and validates it.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] on schema-version mismatch, unknown keys, wrong types, or
    /// failed validation.
    pub fn from_json(v: &Json) -> Result<Self, SpecError> {
        let obj = Obj::new(
            v,
            "spec",
            &[
                "schema_version",
                "id",
                "description",
                "axis",
                "scenario",
                "arms",
                "seeds",
                "solver",
                "engine",
                "reports",
                "rounds",
            ],
        )?;
        let version = obj.u64("schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(SpecError::invalid(
                "spec.schema_version",
                format!("this build reads schema version {SCHEMA_VERSION}, got {version}"),
            ));
        }
        let arms = obj
            .array("arms")?
            .iter()
            .enumerate()
            .map(|(i, arm)| ArmSpec::from_json(arm, &format!("spec.arms[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let reports = obj
            .array("reports")?
            .iter()
            .enumerate()
            .map(|(i, r)| ReportSpec::from_json(r, &format!("spec.reports[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let spec = Self {
            schema_version: version,
            id: obj.str("id")?.to_string(),
            description: obj.str("description")?.to_string(),
            axis: AxisSpec::from_json(obj.req("axis")?, "spec.axis")?,
            scenario: ScenarioSpec::from_json(obj.req("scenario")?, "spec.scenario")?,
            arms,
            seeds: SeedSpec::from_json(obj.req("seeds")?, "spec.seeds")?,
            solver: SolverSpec::from_json(obj.req("solver")?, "spec.solver")?,
            engine: EngineSpec::from_json(obj.req("engine")?, "spec.engine")?,
            reports,
            rounds: match obj.get("rounds") {
                Some(r) => Some(RoundsSpec::from_json(r, "spec.rounds")?),
                None => None,
            },
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses and validates a spec from its serialized form.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] for malformed JSON, otherwise as [`ExperimentSpec::from_json`].
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        Self::from_json(&Json::parse(text)?)
    }
}

impl SweepEngine {
    /// Compiles and evaluates a spec on this engine: `spec → SweepGrid → SweepResult`.
    /// The spec's own [`EngineSpec`] is **not** consulted (this engine's settings win);
    /// use [`ExperimentSpec::run`] to honor it.
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] when the spec fails validation, [`SpecError::Sweep`] when a
    /// cell fails.
    pub fn run_spec(&self, spec: &ExperimentSpec) -> Result<SweepResult, SpecError> {
        let grid = spec.grid()?;
        self.run(&grid).map_err(SpecError::Sweep)
    }
}

// ---------------------------------------------------------------------------
// Strict object reader
// ---------------------------------------------------------------------------

/// Strict object accessor: type checks, required/optional getters, unknown-key rejection,
/// and dotted error paths.
pub(crate) struct Obj<'a> {
    path: &'a str,
    members: &'a [(String, Json)],
}

impl<'a> Obj<'a> {
    /// An object whose keys must all be in `allowed`.
    pub(crate) fn new(v: &'a Json, path: &'a str, allowed: &[&str]) -> Result<Self, SpecError> {
        let obj = Self::any(v, path)?;
        obj.check_keys(allowed)?;
        Ok(obj)
    }

    /// An object with no key restrictions (used to peek at a discriminator first).
    pub(crate) fn any(v: &'a Json, path: &'a str) -> Result<Self, SpecError> {
        match v.as_object() {
            Some(members) => Ok(Self { path, members }),
            None => Err(SpecError::invalid(path, "expected a JSON object")),
        }
    }

    pub(crate) fn check_keys(&self, allowed: &[&str]) -> Result<(), SpecError> {
        for (key, _) in self.members {
            if !allowed.contains(&key.as_str()) {
                return Err(SpecError::invalid(
                    self.path_of(key),
                    format!("unknown key (allowed: {})", allowed.join(", ")),
                ));
            }
        }
        Ok(())
    }

    pub(crate) fn path_of(&self, key: &str) -> String {
        format!("{}.{key}", self.path)
    }

    pub(crate) fn get(&self, key: &str) -> Option<&'a Json> {
        self.members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub(crate) fn req(&self, key: &str) -> Result<&'a Json, SpecError> {
        self.get(key).ok_or_else(|| SpecError::invalid(self.path_of(key), "missing required key"))
    }

    pub(crate) fn str(&self, key: &str) -> Result<&'a str, SpecError> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| SpecError::invalid(self.path_of(key), "expected a string"))
    }

    pub(crate) fn opt_str(&self, key: &str) -> Result<Option<&'a str>, SpecError> {
        self.get(key)
            .map(|v| {
                v.as_str().ok_or_else(|| SpecError::invalid(self.path_of(key), "expected a string"))
            })
            .transpose()
    }

    pub(crate) fn f64(&self, key: &str) -> Result<f64, SpecError> {
        self.req(key)?
            .as_f64()
            .ok_or_else(|| SpecError::invalid(self.path_of(key), "expected a number"))
    }

    pub(crate) fn opt_f64(&self, key: &str) -> Result<Option<f64>, SpecError> {
        self.get(key)
            .map(|v| {
                v.as_f64().ok_or_else(|| SpecError::invalid(self.path_of(key), "expected a number"))
            })
            .transpose()
    }

    pub(crate) fn u64(&self, key: &str) -> Result<u64, SpecError> {
        self.req(key)?.as_u64().ok_or_else(|| {
            SpecError::invalid(self.path_of(key), "expected a non-negative integer (≤ 2^53)")
        })
    }

    pub(crate) fn opt_u64(&self, key: &str) -> Result<Option<u64>, SpecError> {
        self.get(key)
            .map(|v| {
                v.as_u64().ok_or_else(|| {
                    SpecError::invalid(
                        self.path_of(key),
                        "expected a non-negative integer (≤ 2^53)",
                    )
                })
            })
            .transpose()
    }

    pub(crate) fn opt_u32(&self, key: &str) -> Result<Option<u32>, SpecError> {
        self.opt_u64(key)?
            .map(|v| {
                u32::try_from(v).map_err(|_| {
                    SpecError::invalid(self.path_of(key), "expected a 32-bit unsigned integer")
                })
            })
            .transpose()
    }

    pub(crate) fn opt_usize(&self, key: &str) -> Result<Option<usize>, SpecError> {
        self.opt_u64(key)?
            .map(|v| {
                usize::try_from(v).map_err(|_| {
                    SpecError::invalid(self.path_of(key), "does not fit this platform's usize")
                })
            })
            .transpose()
    }

    pub(crate) fn opt_bool(&self, key: &str) -> Result<Option<bool>, SpecError> {
        self.get(key)
            .map(|v| {
                v.as_bool()
                    .ok_or_else(|| SpecError::invalid(self.path_of(key), "expected a boolean"))
            })
            .transpose()
    }

    pub(crate) fn array(&self, key: &str) -> Result<&'a [Json], SpecError> {
        self.req(key)?
            .as_array()
            .ok_or_else(|| SpecError::invalid(self.path_of(key), "expected an array"))
    }

    pub(crate) fn f64_array(&self, key: &str) -> Result<Vec<f64>, SpecError> {
        self.array(key)?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v.as_f64().ok_or_else(|| {
                    SpecError::invalid(format!("{}[{i}]", self.path_of(key)), "expected a number")
                })
            })
            .collect()
    }

    pub(crate) fn u64_array(&self, key: &str) -> Result<Vec<u64>, SpecError> {
        self.array(key)?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v.as_u64().ok_or_else(|| {
                    SpecError::invalid(
                        format!("{}[{i}]", self.path_of(key)),
                        "expected a non-negative integer (≤ 2^53)",
                    )
                })
            })
            .collect()
    }

    pub(crate) fn opt_f64_pair(&self, key: &str) -> Result<Option<(f64, f64)>, SpecError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => {
                let items = v.as_array().ok_or_else(|| {
                    SpecError::invalid(self.path_of(key), "expected a two-number array")
                })?;
                match items {
                    [a, b] => match (a.as_f64(), b.as_f64()) {
                        (Some(lo), Some(hi)) => Ok(Some((lo, hi))),
                        _ => Err(SpecError::invalid(
                            self.path_of(key),
                            "expected a two-number array",
                        )),
                    },
                    _ => Err(SpecError::invalid(self.path_of(key), "expected exactly two numbers")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(
            "tiny",
            AxisSpec { kind: AxisKind::PMaxDbm, values: vec![6.0, 12.0] },
        );
        spec.description = "tiny fixture".to_string();
        spec.scenario.devices = Some(5);
        spec.arms = vec![
            ArmSpec::new(ArmKind::Proposed { weights: Weights::balanced() }),
            ArmSpec::new(ArmKind::Benchmark { draw: BenchmarkDraw::Frequency }),
        ];
        spec.seeds = SeedSpec::list(vec![1, 2]);
        spec.solver = SolverSpec::fast();
        spec.reports = vec![ReportSpec::new("tinya", Metric::Energy, "t", "p_max (dBm)")];
        spec
    }

    #[test]
    fn round_trips_through_json() {
        let spec = tiny_spec();
        let text = spec.to_json_string();
        assert_eq!(ExperimentSpec::from_json_str(&text).unwrap(), spec);
        // And the canonical form is stable under a second round trip.
        assert_eq!(ExperimentSpec::from_json_str(&text).unwrap().to_json_string(), text);
    }

    #[test]
    fn unknown_keys_and_versions_are_rejected() {
        let spec = tiny_spec();
        let mut json = spec.to_json();
        if let Json::Obj(members) = &mut json {
            members.push(("surprise".to_string(), Json::Bool(true)));
        }
        let err = ExperimentSpec::from_json(&json).unwrap_err();
        assert!(
            matches!(&err, SpecError::Invalid { path, .. } if path == "spec.surprise"),
            "{err}"
        );

        let mut wrong_version = spec.to_json();
        if let Json::Obj(members) = &mut wrong_version {
            members[0].1 = Json::uint(999);
        }
        let err = ExperimentSpec::from_json(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("schema version"), "{err}");
    }

    #[test]
    fn validation_catches_structural_mistakes() {
        let mut no_arms = tiny_spec();
        no_arms.arms.clear();
        assert!(
            matches!(no_arms.validate(), Err(SpecError::Invalid { path, .. }) if path == "arms")
        );

        let mut bad_axis = tiny_spec();
        bad_axis.axis = AxisSpec { kind: AxisKind::Devices, values: vec![2.5] };
        assert!(bad_axis.validate().is_err(), "fractional device counts must be rejected");

        let mut axis_deadline_mismatch = tiny_spec();
        axis_deadline_mismatch.arms.push(ArmSpec::new(ArmKind::CommOnly));
        let err = axis_deadline_mismatch.validate().unwrap_err();
        assert!(err.to_string().contains("deadline_s"), "{err}");

        let mut conflicting_samples = tiny_spec();
        conflicting_samples.scenario.samples_per_device = Some(10);
        conflicting_samples.scenario.total_samples = Some(100);
        assert!(conflicting_samples.validate().is_err());

        let mut empty_seeds = tiny_spec();
        empty_seeds.seeds = SeedSpec::list(Vec::new());
        assert!(empty_seeds.validate().is_err());

        // A non-positive deadline axis must fail as loudly as the fixed-deadline form.
        let mut zero_deadline_axis = tiny_spec();
        zero_deadline_axis.axis = AxisSpec { kind: AxisKind::DeadlineS, values: vec![0.0] };
        zero_deadline_axis.arms =
            vec![ArmSpec::new(ArmKind::DeadlineProposed { deadline: DeadlineSpec::Axis })];
        let err = zero_deadline_axis.validate().unwrap_err();
        assert!(err.to_string().contains("strictly positive"), "{err}");

        let mut zero_radius = tiny_spec();
        zero_radius.scenario.radius_km = Some(0.0);
        assert!(zero_radius.validate().is_err());

        // Seed counts the grid compiler could never materialize are a loud validation
        // error, not an OOM at compile time.
        let mut huge_range = tiny_spec();
        huge_range.seeds = SeedSpec {
            policy: SeedPolicy::Range { start: 0, count: MAX_SEEDS + 1 },
            ..huge_range.seeds
        };
        let err = huge_range.validate().unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
        let mut max_range = tiny_spec();
        max_range.seeds = SeedSpec {
            policy: SeedPolicy::Range { start: 0, count: MAX_SEEDS },
            ..max_range.seeds
        };
        assert!(max_range.validate().is_ok(), "the cap itself is allowed");
    }

    #[test]
    fn seed_policies_materialize_in_order() {
        assert_eq!(SeedSpec::count(3).values(), vec![0, 1, 2]);
        assert_eq!(
            SeedSpec { policy: SeedPolicy::Range { start: 5, count: 2 }, ..SeedSpec::count(1) }
                .values(),
            vec![5, 6]
        );
        assert_eq!(SeedSpec::list(vec![11, 7]).values(), vec![11, 7]);
    }

    #[test]
    fn engine_spec_round_trips_and_builds() {
        let spec = EngineSpec {
            threads: Some(2),
            warm_start: Some(true),
            scenario_sharing: Some(false),
            streaming: Some(false),
            seed_chunk: Some(7),
            shard_retries: Some(3),
            shard_timeout_s: Some(120),
        };
        let parsed = EngineSpec::from_json(&spec.to_json(), "engine").unwrap();
        assert_eq!(parsed, spec);
        let engine = spec.to_engine();
        assert_eq!(engine.threads(), 2);
        assert!(!engine.shares_scenarios());
        assert!(!engine.streams_reduction());
        assert_eq!(engine.seed_chunk(), 7);
        // The empty spec serializes to an empty object.
        assert_eq!(EngineSpec::default().to_json(), Json::Obj(vec![]));
    }

    #[test]
    fn engine_spec_fleet_fields_are_validated_strictly() {
        // `shard_retries: 0` is legal (retries disabled)…
        let spec = EngineSpec { shard_retries: Some(0), ..EngineSpec::default() };
        assert_eq!(EngineSpec::from_json(&spec.to_json(), "engine").unwrap(), spec);
        // …but a zero timeout can never complete a shard.
        let bad = EngineSpec { shard_timeout_s: Some(0), ..EngineSpec::default() };
        let err = EngineSpec::from_json(&bad.to_json(), "engine").unwrap_err();
        assert!(err.to_string().contains("shard_timeout_s"), "{err}");
        // Unknown keys stay rejected (strict parse).
        let doc = Json::obj([("shard_retrys", Json::uint(1))]);
        assert!(EngineSpec::from_json(&doc, "engine").is_err());
    }

    #[test]
    fn solver_overrides_resolve_over_the_preset() {
        let mut spec = SolverSpec::fast();
        spec.outer_tol = Some(2.5e-3);
        spec.polish_with_reference = Some(false);
        let config = spec.resolve();
        assert_eq!(config.outer_max_iter, SolverConfig::fast().outer_max_iter);
        assert_eq!(config.outer_tol, 2.5e-3);
        assert!(!config.polish_with_reference);
        // No overrides: exactly the preset.
        assert_eq!(SolverSpec::fast().resolve(), SolverConfig::fast());
        assert_eq!(SolverSpec::default().resolve(), SolverConfig::default());
    }

    #[test]
    fn compiled_grid_matches_a_hand_built_one() {
        let spec = tiny_spec();
        let grid = spec.grid().unwrap();
        assert_eq!(grid.seeds, vec![1, 2]);
        assert_eq!(grid.points.len(), 2);
        assert_eq!(grid.arms.len(), 2);
        assert_eq!(grid.arms[0].name(), "proposed w1=0.5,w2=0.5");
        assert_eq!(grid.arms[1].name(), "benchmark");
        let expected = ScenarioBuilder::paper_default().with_devices(5).with_p_max_dbm(12.0);
        assert_eq!(grid.points[1].builder, expected);
    }

    #[test]
    fn labeled_and_patched_arms_compile_to_configured_arms() {
        let arm = ArmSpec::new(ArmKind::Proposed { weights: Weights::balanced() })
            .labeled("N = 3")
            .with_scenario(ScenarioSpec { devices: Some(3), ..ScenarioSpec::default() });
        let live = arm.instantiate(SolverConfig::fast());
        assert_eq!(live.name(), "N = 3");
        let base = ScenarioBuilder::paper_default();
        assert_eq!(live.prepare(&base), base.clone().with_devices(3));
    }

    #[test]
    fn run_spec_evaluates_the_grid() {
        let mut spec = tiny_spec();
        spec.seeds = SeedSpec::list(vec![1]);
        spec.axis.values = vec![12.0];
        let run = spec.run_with_engine(&SweepEngine::single_thread()).unwrap();
        assert_eq!(run.result.xs, vec![12.0]);
        assert_eq!(run.reports.len(), 1);
        assert_eq!(run.reports[0].id, "tinya");
        assert!(run.result.aggregates[0][0].mean_energy_j > 0.0);
    }
}
