//! Deterministic fault injection for chaos-testing the fleet path.
//!
//! A [`FaultPlan`] names one fault class and one target seed. It travels to fleet
//! workers through the [`FAULT_PLAN_ENV`] environment variable (subprocess workers
//! inherit the coordinator's environment), and **only** the worker whose shard *starts*
//! at the target seed misbehaves — every other shard, and the coordinator itself, runs
//! clean. That makes chaos tests deterministic end to end: the same plan always fails
//! the same shard in the same way, so the hardening contract ("byte-identical,
//! explicit-hole salvage, or typed error — never a hang, never a coordinator panic")
//! is assertable in CI.
//!
//! The shard-side plan is consulted exclusively by the worker mode of the `fedopt` CLI
//! (`fedopt run --spec - --shard-json`), i.e. by coordinator-spawned subprocesses —
//! which is exactly the production failure surface: real worker crashes, stalls and
//! corrupted pipes all happen on the far side of the [`crate::shard::SubprocessRunner`]
//! boundary, so that is where injected ones must happen too.
//!
//! The serve-side kinds ([`FaultKind::SlowRequest`], [`FaultKind::PoisonRequest`],
//! [`FaultKind::FloodRequest`]) target `fedopt serve` instead: there the `@<target>`
//! suffix addresses a **0-based request index** in the session's input stream, and the
//! fault fires inside the worker thread that picked that request up. The two families
//! are mutually inert — a serve plan is ignored by fleet workers and a shard plan is
//! ignored by the serving loop — so one environment variable covers both surfaces
//! without cross-talk.

use crate::spec::ExperimentSpec;
use std::fmt;

/// Environment variable carrying a serialized fault plan (`<kind>@<seed>`), e.g.
/// `crash@3`. Unset means no injection; a malformed value is a loud error, never
/// silently ignored (a typo'd chaos run must not masquerade as a clean control run).
pub const FAULT_PLAN_ENV: &str = "FEDOPT_FAULT_PLAN";

/// The injectable fault classes, each modeling one real-world worker failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker exits with an error before doing any work (spawn-time crash, OOM
    /// kill at startup, bad binary).
    CrashOnEntry,
    /// The worker computes its shard but exits mid-stream, leaving a truncated result
    /// document on stdout (broken pipe, disk-full stdout redirection).
    TruncateStdout,
    /// The worker hangs silently forever, emitting no heartbeat and no output (livelock,
    /// NFS stall). Only a timeout can end it.
    Stall,
    /// The worker emits a complete-looking result document with one byte flipped
    /// (memory corruption, torn write). The wire checksum must catch it.
    CorruptWire,
    /// The worker floods stderr with garbage lines and then fails (runaway logging
    /// before a crash). The coordinator's stderr capture must stay bounded.
    StderrFlood,
    /// Serve-side: the worker sleeps past the request's wall-clock budget before
    /// solving (GC pause, page-fault storm, cold cache). The deadline watchdog must
    /// turn it into a typed `degraded` response, never a hang.
    SlowRequest,
    /// Serve-side: handling the target request panics inside the worker (heap
    /// corruption, logic bug on a hostile input). Quarantine must tear down only that
    /// worker's workspace and the supervisor must keep answering.
    PoisonRequest,
    /// Serve-side: the worker holds the target request until the input stream reaches
    /// EOF before solving it (a wedged downstream dependency). With a bounded queue
    /// this deterministically forces admission-control shedding of the requests piled
    /// up behind it.
    FloodRequest,
}

impl FaultKind {
    /// The wire name used in [`FAULT_PLAN_ENV`].
    pub const fn name(self) -> &'static str {
        match self {
            FaultKind::CrashOnEntry => "crash",
            FaultKind::TruncateStdout => "truncate",
            FaultKind::Stall => "stall",
            FaultKind::CorruptWire => "corrupt",
            FaultKind::StderrFlood => "flood",
            FaultKind::SlowRequest => "slowreq",
            FaultKind::PoisonRequest => "poisonreq",
            FaultKind::FloodRequest => "floodreq",
        }
    }

    /// Whether this kind targets the serving loop (`fedopt serve`) rather than fleet
    /// shard workers. The serving loop honors exactly these kinds and treats every
    /// other plan as dormant, and vice versa.
    pub const fn is_serve_fault(self) -> bool {
        matches!(self, FaultKind::SlowRequest | FaultKind::PoisonRequest | FaultKind::FloodRequest)
    }

    fn parse(text: &str) -> Option<Self> {
        match text {
            "crash" => Some(FaultKind::CrashOnEntry),
            "truncate" => Some(FaultKind::TruncateStdout),
            "stall" => Some(FaultKind::Stall),
            "corrupt" => Some(FaultKind::CorruptWire),
            "flood" => Some(FaultKind::StderrFlood),
            "slowreq" => Some(FaultKind::SlowRequest),
            "poisonreq" => Some(FaultKind::PoisonRequest),
            "floodreq" => Some(FaultKind::FloodRequest),
            _ => None,
        }
    }
}

/// One planned fault: which class, and which target (a shard's first seed, or — for
/// serve-side kinds — a request index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault class to inject.
    pub kind: FaultKind,
    /// For shard kinds: the shard whose seed sub-range *starts* with this seed
    /// misbehaves; all others run clean. For serve kinds: the 0-based index of the
    /// request in the session's input stream that misbehaves. A target outside the
    /// sweep/stream makes the plan a no-op (the control arm of a chaos experiment).
    pub target_seed: u64,
}

impl FaultPlan {
    /// Parses the `<kind>@<seed>` wire form.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformation (unknown kind, missing `@`,
    /// non-numeric seed).
    pub fn parse(text: &str) -> Result<Self, String> {
        let (kind_text, seed_text) = text
            .split_once('@')
            .ok_or_else(|| format!("fault plan {text:?} must look like <kind>@<seed>"))?;
        let kind = FaultKind::parse(kind_text).ok_or_else(|| {
            format!(
                "unknown fault kind {kind_text:?} (expected crash, truncate, stall, \
                 corrupt or flood for fleet shards; slowreq, poisonreq or floodreq \
                 for serve requests)"
            )
        })?;
        let target_seed = seed_text
            .parse::<u64>()
            .map_err(|_| format!("fault target seed {seed_text:?} must be an unsigned integer"))?;
        Ok(Self { kind, target_seed })
    }

    /// Reads the plan from [`FAULT_PLAN_ENV`]. `Ok(None)` when unset.
    ///
    /// # Errors
    ///
    /// The parse error of a set-but-malformed value — callers must surface it, not
    /// swallow it.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(text) => Self::parse(&text).map(Some).map_err(|e| format!("{FAULT_PLAN_ENV}: {e}")),
            Err(_) => Ok(None),
        }
    }

    /// Whether this plan targets the given shard spec: true iff the spec's seed
    /// sequence starts with the target seed. Serve-side kinds never target a shard.
    pub fn applies_to(&self, spec: &ExperimentSpec) -> bool {
        !self.kind.is_serve_fault() && spec.seeds.values().first() == Some(&self.target_seed)
    }

    /// Whether this plan targets the serve request at the given 0-based stream index.
    /// Shard-side kinds never target a request.
    pub fn applies_to_request(&self, index: u64) -> bool {
        self.kind.is_serve_fault() && self.target_seed == index
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind.name(), self.target_seed)
    }
}

/// Deterministically corrupts one wire line: XORs the byte at the midpoint with
/// `0x20`. The result parses as garbage or as a changed value — either way the
/// receiver's checksum (or parser) must reject it; it must never be silently merged.
pub fn corrupt_payload(line: &str) -> String {
    let mut bytes = line.as_bytes().to_vec();
    if !bytes.is_empty() {
        let pos = bytes.len() / 2;
        bytes[pos] ^= 0x20;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_the_wire_form() {
        for kind in [
            FaultKind::CrashOnEntry,
            FaultKind::TruncateStdout,
            FaultKind::Stall,
            FaultKind::CorruptWire,
            FaultKind::StderrFlood,
            FaultKind::SlowRequest,
            FaultKind::PoisonRequest,
            FaultKind::FloodRequest,
        ] {
            let plan = FaultPlan { kind, target_seed: 42 };
            assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        }
    }

    #[test]
    fn malformed_plans_are_loud_typed_errors() {
        for bad in ["", "crash", "crash@", "crash@x", "@3", "segfault@1", "crash@-1"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn plans_target_exactly_the_shard_starting_at_the_seed() {
        let spec = crate::presets::spec(2, crate::presets::Variant::Quick).unwrap();
        let first = spec.seeds.values()[0];
        let plan = FaultPlan { kind: FaultKind::CrashOnEntry, target_seed: first };
        assert!(plan.applies_to(&spec));
        let miss = FaultPlan { kind: FaultKind::CrashOnEntry, target_seed: first + 999 };
        assert!(!miss.applies_to(&spec));
    }

    #[test]
    fn the_two_fault_families_are_mutually_inert() {
        let spec = crate::presets::spec(2, crate::presets::Variant::Quick).unwrap();
        let first = spec.seeds.values()[0];
        // A serve plan aimed exactly at a shard's first seed still never fires there…
        let serve = FaultPlan { kind: FaultKind::PoisonRequest, target_seed: first };
        assert!(!serve.applies_to(&spec));
        assert!(serve.applies_to_request(first));
        // …and a shard plan aimed at a request index never fires in the serving loop.
        let shard = FaultPlan { kind: FaultKind::CrashOnEntry, target_seed: 0 };
        assert!(!shard.applies_to_request(0));
        for kind in [FaultKind::SlowRequest, FaultKind::PoisonRequest, FaultKind::FloodRequest] {
            assert!(kind.is_serve_fault());
        }
        for kind in [
            FaultKind::CrashOnEntry,
            FaultKind::TruncateStdout,
            FaultKind::Stall,
            FaultKind::CorruptWire,
            FaultKind::StderrFlood,
        ] {
            assert!(!kind.is_serve_fault());
        }
    }

    #[test]
    fn corruption_changes_the_payload_deterministically() {
        let line = "{\"kind\":\"fedopt_shard_result\",\"value\":1.25}";
        let corrupted = corrupt_payload(line);
        assert_ne!(corrupted, line);
        assert_eq!(corrupt_payload(line), corrupted, "must be deterministic");
        assert_eq!(corrupt_payload(""), "");
    }
}
