//! # experiments
//!
//! The reproduction harness for the evaluation section (Section VII) of the ICDCS 2022 paper.
//!
//! The blessed entry point is the **declarative spec API**: an experiment is a
//! serializable [`spec::ExperimentSpec`] (axis + scenario template + arms + seed policy +
//! solver/engine options + reports) — the seven figures are just preset spec values in
//! [`presets`], the single `fedopt` binary ([`cli`]) runs any spec from a figure number or
//! a JSON file, and [`engine::SweepEngine::run_spec`] compiles a spec onto the imperative
//! [`engine::SweepGrid`] machinery. Because specs are data (lossless JSON round trip,
//! byte-stable serialization), a sweep can be received over a wire, cached, diffed,
//! replayed, and sharded — a shard is a spec plus a seed range.
//!
//! Every figure module (`fig2`…`fig8`) still hosts its historical config struct — the
//! imperative reference the spec path is pinned against bit for bit — plus `quick_spec()`
//! / `paper_spec()` constructors delegating to [`presets`].
//!
//! All sweeps evaluate through the same substrate: a declarative [`engine::SweepGrid`]
//! (sweep points × [`arms`] × scenario seeds) evaluated by the parallel
//! [`engine::SweepEngine`] across threads in (point, seed) cell-groups — one scenario
//! build shared by every arm of the group, one reusable
//! [`SolverWorkspace`](fedopt_core::SolverWorkspace) per worker thread — with
//! deterministic, thread-count-independent output (see the [`engine`] module docs for the
//! cell-group architecture and the seeding scheme).
//!
//! | module | paper figure | sweep |
//! |---|---|---|
//! | [`fig2`] | Fig. 2a/2b | energy & delay vs maximum transmit power, five weight pairs + benchmark |
//! | [`fig3`] | Fig. 3a/3b | energy & delay vs maximum CPU frequency, five weight pairs + benchmark |
//! | [`fig4`] | Fig. 4a/4b | energy & delay vs number of devices (total samples fixed) |
//! | [`fig5`] | Fig. 5a/5b | energy & delay vs cell radius for N ∈ {20, 50, 80} |
//! | [`fig6`] | Fig. 6a/6b | energy & delay vs local iterations for R_g ∈ {50…400} |
//! | [`fig7`] | Fig. 7 | energy vs completion-time deadline: joint vs comm-only vs comp-only |
//! | [`fig8`] | Fig. 8 | energy vs maximum transmit power at fixed deadlines: proposed vs Scheme 1 |
//!
//! ```rust
//! use experiments::fig7::{run, Fig7Config};
//!
//! # fn main() -> Result<(), fedopt_core::CoreError> {
//! let mut cfg = Fig7Config::quick();
//! cfg.devices = 6; // keep the doctest fast
//! cfg.deadlines_s = vec![110.0, 150.0];
//! let report = run(&cfg)?;
//! assert_eq!(report.series_names().len(), 3);
//! println!("{}", report.to_table_string());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arms;
pub mod cli;
pub mod engine;
pub mod fault;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod json;
pub mod presets;
pub mod report;
pub mod rounds;
pub mod serve;
pub mod shard;
pub mod spec;

pub use engine::{Aggregate, SweepCounters, SweepEngine, SweepGrid, SweepResult};
pub use report::FigureReport;
pub use rounds::RoundSimRun;
pub use shard::{FleetOptions, FleetStats, ShardCache, ShardError, ShardResult};
pub use spec::{ExperimentSpec, SpecError, SpecRun};
