//! Figure 8 — total energy vs the maximum transmit power at fixed completion-time deadlines,
//! comparing the proposed algorithm against Scheme 1 (Yang et al., IEEE TWC 2021).

use crate::arms::{DeadlineProposedArm, DeadlineSource, Scheme1Arm};
use crate::engine::{SweepEngine, SweepGrid};
use crate::report::FigureReport;
use fedopt_core::{CoreError, SolverConfig};
use flsys::ScenarioBuilder;

/// Configuration of the Figure-8 sweep.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Number of devices (the paper uses 50).
    pub devices: usize,
    /// The `p_max` values to sweep, in dBm.
    pub p_max_dbm: Vec<f64>,
    /// The fixed completion-time deadlines, in seconds (the paper uses 80, 100, 150).
    pub deadlines_s: Vec<f64>,
    /// Scenario seeds to average over.
    pub seeds: Vec<u64>,
    /// Solver settings.
    pub solver: SolverConfig,
}

impl Fig8Config {
    /// Small preset for CI / benches.
    pub fn quick() -> Self {
        Self {
            devices: 12,
            p_max_dbm: vec![6.0, 9.0, 12.0],
            deadlines_s: vec![100.0, 150.0],
            seeds: vec![71],
            solver: SolverConfig::fast(),
        }
    }

    /// The paper's setup: 50 devices, 5–12 dBm, deadlines {80, 100, 150} s, 100
    /// scenario draws per point.
    pub fn paper() -> Self {
        Self {
            devices: 50,
            p_max_dbm: (5..=12).map(f64::from).collect(),
            deadlines_s: vec![80.0, 100.0, 150.0],
            seeds: (0..100).collect(),
            solver: SolverConfig::default(),
        }
    }

    /// The sweep grid: `p_max` as points, a `(scheme1, proposed)` arm pair per deadline.
    pub fn grid(&self) -> SweepGrid {
        let mut grid = SweepGrid::new(self.seeds.clone());
        for &p_max in &self.p_max_dbm {
            grid = grid.point(
                p_max,
                ScenarioBuilder::paper_default().with_devices(self.devices).with_p_max_dbm(p_max),
            );
        }
        for &deadline in &self.deadlines_s {
            grid = grid
                .arm(Scheme1Arm::new(deadline, self.solver))
                .arm(DeadlineProposedArm::new(DeadlineSource::Fixed(deadline), self.solver));
        }
        grid
    }
}

/// The spec twin of [`Fig8Config::quick`]: the same sweep as a serializable
/// [`ExperimentSpec`](crate::spec::ExperimentSpec) (see [`crate::presets`]); compiled via
/// [`SweepEngine::run_spec`](crate::engine::SweepEngine::run_spec) it is bit-identical to
/// this module's imperative path.
pub fn quick_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig8(crate::presets::Variant::Quick)
}

/// The spec twin of [`Fig8Config::paper`]. Unlike the legacy config, the paper-scale
/// spec defaults the warm-start continuation on (`engine.warm_start = Some(true)`);
/// `FEDOPT_WARM_START=0` still forces it off.
pub fn paper_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig8(crate::presets::Variant::Paper)
}

/// Runs the sweep on a default engine and returns the Figure-8 report (two series per
/// deadline: Scheme 1 and the proposed algorithm).
///
/// # Errors
///
/// Propagates solver errors (infeasible seeds are skipped).
pub fn run(cfg: &Fig8Config) -> Result<FigureReport, CoreError> {
    run_with_engine(cfg, &SweepEngine::new())
}

/// [`run`] on an explicit engine.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run_with_engine(cfg: &Fig8Config, engine: &SweepEngine) -> Result<FigureReport, CoreError> {
    let result = engine.run(&cfg.grid())?;
    Ok(result.energy_report(
        "fig8",
        "Total energy consumption vs maximum transmit power at fixed deadlines",
        "p_max (dBm)",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_never_loses_to_scheme1_and_gap_grows_when_tight() {
        // A deadline of 40 s is genuinely tight for 8 devices (the fastest possible schedule
        // needs ~25 s), which is where the paper reports the largest advantage; 150 s is
        // loose, where the two schemes converge.
        let cfg = Fig8Config {
            devices: 8,
            p_max_dbm: vec![8.0, 12.0],
            deadlines_s: vec![40.0, 150.0],
            seeds: vec![8],
            solver: SolverConfig::fast(),
        };
        let report = run(&cfg).unwrap();
        // Columns: scheme1(T=40), proposed(T=40), scheme1(T=150), proposed(T=150).
        let mut tight_gaps = Vec::new();
        let mut loose_gaps = Vec::new();
        for (p_max, row) in &report.rows {
            assert!(
                row[1] <= row[0] * 1.02,
                "p_max={p_max}: proposed {} vs scheme1 {}",
                row[1],
                row[0]
            );
            assert!(
                row[3] <= row[2] * 1.02,
                "p_max={p_max}: proposed {} vs scheme1 {}",
                row[3],
                row[2]
            );
            tight_gaps.push(row[0] - row[1]);
            loose_gaps.push(row[2] - row[3]);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&tight_gaps) >= avg(&loose_gaps) - 1e-9,
            "the advantage should be at least as large at the tight deadline (tight {:?} vs loose {:?})",
            tight_gaps,
            loose_gaps
        );
        assert!(
            avg(&tight_gaps) > 0.0,
            "proposed should win strictly at the tight deadline: {tight_gaps:?}"
        );
    }
}
