//! The parallel sweep engine behind every figure of the evaluation.
//!
//! The paper's protocol (Section VII) averages each figure point over many random scenario
//! draws (100 per point in the paper's setup). That grid — sweep point × scheme ("arm") ×
//! scenario seed — is embarrassingly parallel, and this module evaluates it as such: a
//! [`SweepGrid`] declares the cells, a [`SweepEngine`] evaluates them across threads, and
//! the per-(point, arm) results are reduced into [`Aggregate`]s (mean / standard deviation /
//! feasible-sample count) that [`SweepResult`] turns into [`FigureReport`]s.
//!
//! # Cell-group architecture
//!
//! The unit of parallel work is a **(point, seed) cell-group**, not a single cell. All arms
//! at a sweep point see the same scenario realisation per seed, so the engine builds each
//! scenario **once** per group and evaluates every arm of the group against the shared
//! build by reference — scenario builds drop from `points × arms × seeds` to
//! `points × seeds`. Arms that specialise their builder via [`Arm::prepare`] (Figures 5 and
//! 6 sweep per-arm device/round counts) are grouped by *identical prepared builder*, so
//! only genuinely distinct scenarios are built. [`SweepResult::counters`] reports scenarios
//! built vs cells evaluated; [`SweepEngine::with_scenario_sharing`] can disable the sharing
//! (one build per cell, the historical behaviour) — a regression test asserts both paths
//! are bit-identical.
//!
//! Each worker thread owns one [`SolverWorkspace`] for its whole share of the grid and
//! threads it through [`CellContext::workspace`], so the solver hot path reuses one set of
//! per-device buffers instead of allocating per cell (the workspace is pure scratch — see
//! `fedopt_core::workspace` for the contract).
//!
//! # Seeding scheme
//!
//! Determinism is independent of thread count and scheduling because no randomness flows
//! through iteration order; every cell's inputs are pure functions of its *coordinates*:
//!
//! * **Scenario stream** — the cell's scenario is `builder.build(seed)`, where `seed` is the
//!   cell's entry from [`SweepGrid::seeds`] and the builder is derived from the cell's point
//!   (and arm, via [`Arm::prepare`]) alone. Every arm at a sweep point therefore sees *the
//!   same* scenario realisations — schemes are compared on identical draws, as in the paper
//!   (the cell-group sharing above merely stops re-building what is identical by
//!   construction).
//! * **Arm stream** — arms with internal randomness (the random benchmark) must not reuse
//!   the scenario seed, or their draws would be correlated with the channel realisations.
//!   Each cell carries [`CellContext::stream_seed`], produced by
//!   [`baselines::derive_stream_seed`] from the base seed (historically `seed ^ 0x9e37_79b9`,
//!   now defined in exactly one place).
//! * **Reduction order** — per-cell outputs are written to slots indexed by
//!   `(point, arm, seed)` and reduced sequentially in seed order, so floating-point sums are
//!   bit-identical between a single-threaded and an N-threaded run (verified by a
//!   regression test against the historical sequential helpers).
//!
//! Cells that report infeasibility ([`Arm::evaluate`] returning `Ok(None)`) are recorded,
//! not averaged: an [`Aggregate`] with `count == 0` keeps `NaN` means but the per-cell
//! sample counts travel with the [`FigureReport`], so "no feasible draw" is a labelled
//! condition instead of a silent `NaN`.
//!
//! Threading uses a scoped work-stealing map over `std::thread` (see [`par_map_indexed`]
//! and its stateful sibling [`par_map_indexed_with`]); the environment cannot fetch
//! `rayon`, and the engine needs nothing more than an indexed parallel map.

use crate::report::FigureReport;
use fedopt_core::{CoreError, SolverWorkspace};
use flsys::{Scenario, ScenarioBuilder};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One evaluated cell: the totals the figures plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellOutput {
    /// Total energy consumption in joules.
    pub energy_j: f64,
    /// Total completion time in seconds.
    pub time_s: f64,
}

impl CellOutput {
    /// Creates a cell output from the two totals.
    pub fn new(energy_j: f64, time_s: f64) -> Self {
        Self { energy_j, time_s }
    }
}

/// The coordinates, derived seeds and per-worker scratch of the cell being evaluated.
#[derive(Debug)]
pub struct CellContext<'a> {
    /// The sweep point's x value (e.g. `p_max` in dBm for Figure 2, the deadline in seconds
    /// for Figure 7).
    pub x: f64,
    /// The base (scenario) seed of this cell.
    pub seed: u64,
    /// The decorrelated stream seed for arm-internal randomness
    /// ([`baselines::derive_stream_seed`] of [`Self::seed`]).
    pub stream_seed: u64,
    /// Index of the sweep point within [`SweepGrid::points`].
    pub point_idx: usize,
    /// Index of the arm within [`SweepGrid::arms`].
    pub arm_idx: usize,
    /// The worker thread's reusable solver workspace. Pure scratch (see
    /// `fedopt_core::workspace` for the contract): arms may hand it to any `*_with` solver
    /// entry point but must not expect state to survive between cells.
    pub workspace: &'a mut SolverWorkspace,
}

/// One scheme being swept: a column of the resulting figure.
///
/// Implementations must be [`Send`] + [`Sync`]; the engine shares them across worker
/// threads by reference and must never observe interior mutability across cells (that
/// would break run-to-run determinism). Per-cell mutable scratch belongs in
/// [`CellContext::workspace`], which the engine owns per worker thread.
pub trait Arm: Send + Sync {
    /// The column name, e.g. `"proposed w1=0.9,w2=0.1"` or `"benchmark"`.
    fn name(&self) -> String;

    /// Hook to specialise the sweep point's scenario builder for this arm (e.g. Figure 5's
    /// per-series device counts). The default keeps the point's builder unchanged.
    ///
    /// Arms whose prepared builders compare equal (the default does, trivially) share one
    /// scenario build per (point, seed) cell-group.
    fn prepare(&self, builder: &ScenarioBuilder) -> ScenarioBuilder {
        builder.clone()
    }

    /// Evaluates one cell. `Ok(None)` marks an infeasible cell (skipped by the aggregate,
    /// counted in [`Aggregate::attempts`] only); errors abort the sweep.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] other than "this cell is infeasible" (which is `Ok(None)`).
    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError>;
}

/// One sweep point: the x value and the scenario builder all arms share there.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// The x-axis value this point is plotted at.
    pub x: f64,
    /// Builder for the scenarios of this point (before [`Arm::prepare`]).
    pub builder: ScenarioBuilder,
}

/// The declarative evaluation grid: points × arms × seeds.
pub struct SweepGrid {
    /// The sweep points, in x-axis order.
    pub points: Vec<GridPoint>,
    /// The schemes, in column order.
    pub arms: Vec<Box<dyn Arm>>,
    /// The base scenario seeds averaged over, shared by every (point, arm).
    pub seeds: Vec<u64>,
}

impl SweepGrid {
    /// Creates an empty grid over the given scenario seeds.
    pub fn new(seeds: impl Into<Vec<u64>>) -> Self {
        Self { points: Vec::new(), arms: Vec::new(), seeds: seeds.into() }
    }

    /// Adds a sweep point.
    #[must_use]
    pub fn point(mut self, x: f64, builder: ScenarioBuilder) -> Self {
        self.points.push(GridPoint { x, builder });
        self
    }

    /// Adds an arm (column).
    #[must_use]
    pub fn arm(mut self, arm: impl Arm + 'static) -> Self {
        self.arms.push(Box::new(arm));
        self
    }

    /// Total number of cells the grid will evaluate.
    pub fn num_cells(&self) -> usize {
        self.points.len() * self.arms.len() * self.seeds.len()
    }
}

/// Mean / spread / sample-count summary of one (point, arm) across the seed draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Mean total energy over the feasible draws (`NaN` when `count == 0`).
    pub mean_energy_j: f64,
    /// Mean total completion time over the feasible draws (`NaN` when `count == 0`).
    pub mean_time_s: f64,
    /// Population standard deviation of the energy over the feasible draws.
    pub std_energy_j: f64,
    /// Population standard deviation of the completion time over the feasible draws.
    pub std_time_s: f64,
    /// Number of feasible draws behind the means.
    pub count: usize,
    /// Number of draws evaluated (feasible or not).
    pub attempts: usize,
}

impl Aggregate {
    /// Reduces the per-seed outputs of one (point, arm), in seed order.
    ///
    /// Summation order is fixed (seed order), so the result is bit-identical regardless of
    /// which threads produced the samples — and matches the historical sequential helpers,
    /// which accumulated in the same order.
    pub fn from_samples(samples: &[Option<CellOutput>]) -> Self {
        let attempts = samples.len();
        let feasible: Vec<CellOutput> = samples.iter().flatten().copied().collect();
        let count = feasible.len();
        if count == 0 {
            return Self {
                mean_energy_j: f64::NAN,
                mean_time_s: f64::NAN,
                std_energy_j: f64::NAN,
                std_time_s: f64::NAN,
                count: 0,
                attempts,
            };
        }
        let n = count as f64;
        let mut energy = 0.0;
        let mut time = 0.0;
        for s in &feasible {
            energy += s.energy_j;
            time += s.time_s;
        }
        let (mean_energy_j, mean_time_s) = (energy / n, time / n);
        let mut var_e = 0.0;
        let mut var_t = 0.0;
        for s in &feasible {
            var_e += (s.energy_j - mean_energy_j) * (s.energy_j - mean_energy_j);
            var_t += (s.time_s - mean_time_s) * (s.time_s - mean_time_s);
        }
        Self {
            mean_energy_j,
            mean_time_s,
            std_energy_j: (var_e / n).sqrt(),
            std_time_s: (var_t / n).sqrt(),
            count,
            attempts,
        }
    }
}

/// Work counters of one sweep: how many scenarios were actually built versus how many
/// cells were evaluated against them.
///
/// With scenario sharing on (the default) and arms that don't specialise their builder,
/// `scenarios_built == points × seeds` while `cells_evaluated == points × arms × seeds` —
/// the build cost is amortised across the arm count. Both counters are deterministic for a
/// successful sweep (independent of thread count); after an aborted sweep they reflect
/// only the work done before the abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepCounters {
    /// Number of `ScenarioBuilder::build` calls the sweep performed.
    pub scenarios_built: usize,
    /// Number of [`Arm::evaluate`] calls the sweep performed.
    pub cells_evaluated: usize,
}

/// The evaluated grid: one [`Aggregate`] per (point, arm).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The x value of every sweep point, in grid order.
    pub xs: Vec<f64>,
    /// The arm (column) names, in grid order.
    pub arm_names: Vec<String>,
    /// `aggregates[point_idx][arm_idx]`.
    pub aggregates: Vec<Vec<Aggregate>>,
    /// Scenario-build vs cell-evaluation counters of the run.
    pub counters: SweepCounters,
}

impl SweepResult {
    /// Builds a [`FigureReport`] from one metric of the aggregates, carrying the per-cell
    /// feasible-sample counts.
    pub fn report(
        &self,
        id: &str,
        title: &str,
        x_label: &str,
        y_label: &str,
        metric: impl Fn(&Aggregate) -> f64,
    ) -> FigureReport {
        let mut report = FigureReport::new(id, title, x_label, y_label, self.arm_names.clone());
        for (x, row) in self.xs.iter().zip(&self.aggregates) {
            report.push_row_with_counts(
                *x,
                row.iter().map(&metric).collect(),
                row.iter().map(|a| a.count).collect(),
            );
        }
        report
    }

    /// The mean-total-energy report.
    pub fn energy_report(&self, id: &str, title: &str, x_label: &str) -> FigureReport {
        self.report(id, title, x_label, "total energy (J)", |a| a.mean_energy_j)
    }

    /// The mean-total-completion-time report.
    pub fn time_report(&self, id: &str, title: &str, x_label: &str) -> FigureReport {
        self.report(id, title, x_label, "total time (s)", |a| a.mean_time_s)
    }
}

/// Environment variable read by [`SweepEngine::new`] to pin the default worker count
/// (positive integer; anything else is ignored). CI uses it to run the whole test suite
/// through both the sequential and the multi-worker scheduling path.
pub const THREADS_ENV: &str = "FEDOPT_SWEEP_THREADS";

/// Evaluates [`SweepGrid`]s in parallel with deterministic output.
#[derive(Debug, Clone, Copy)]
pub struct SweepEngine {
    threads: NonZeroUsize,
    share_scenarios: bool,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine using all available CPU parallelism (or the [`THREADS_ENV`] override).
    pub fn new() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .and_then(NonZeroUsize::new)
            .unwrap_or_else(|| std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN));
        Self { threads, share_scenarios: true }
    }

    /// An engine with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is nonzero"),
            share_scenarios: true,
        }
    }

    /// A sequential engine — useful as the reference in determinism tests.
    pub fn single_thread() -> Self {
        Self::with_threads(1)
    }

    /// Enables or disables sharing one scenario build across the arms of a (point, seed)
    /// cell-group (default: enabled). Disabling rebuilds the scenario for every cell — the
    /// historical behaviour, kept selectable as the reference for the bit-identity
    /// regression test and the `scenario_cache` bench.
    #[must_use]
    pub fn with_scenario_sharing(mut self, share: bool) -> Self {
        self.share_scenarios = share;
        self
    }

    /// Whether this engine shares scenario builds across the arms of a cell-group.
    pub fn shares_scenarios(&self) -> bool {
        self.share_scenarios
    }

    /// The worker count this engine will use.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Evaluates every cell of the grid and reduces the per-(point, arm) aggregates.
    ///
    /// The unit of parallel work is a (point, seed) cell-group: the group's scenario is
    /// built once per set of arms whose prepared builders compare equal, and every arm of
    /// the set evaluates against the shared build by reference. Output slots stay indexed
    /// by `(point, arm, seed)`, so the reduction — and therefore the result — is bit-identical
    /// to the historical one-build-per-cell engine at any thread count.
    ///
    /// # Errors
    ///
    /// A hard cell error aborts the sweep: workers stop picking up new cell-groups as soon
    /// as one cell fails, and in-flight groups abandon their remaining cells at the next
    /// cell boundary (the cell being solved still finishes), so a deterministic early
    /// failure does not burn through the rest of an expensive grid. The error surfaced is
    /// the failing cell with the lowest
    /// `(point, arm, seed)` slot index among those evaluated — with one thread the groups
    /// run in `(point, seed)` order, so that is the first error the run hit; with more,
    /// scheduling decides which failing cells were reached first. Infeasible cells
    /// (`Ok(None)`) are not errors.
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepResult, CoreError> {
        let n_points = grid.points.len();
        let n_arms = grid.arms.len();
        let n_seeds = grid.seeds.len();
        // Builders are pure data; specialise them once per (point, arm) up front.
        let builders: Vec<Vec<ScenarioBuilder>> = grid
            .points
            .iter()
            .map(|p| grid.arms.iter().map(|a| a.prepare(&p.builder)).collect())
            .collect();

        // Group each point's arms by identical prepared builder: every group shares one
        // scenario build per seed. With sharing disabled, every arm is its own group.
        let groups: Vec<Vec<Vec<usize>>> = builders
            .iter()
            .map(|point_builders| {
                let mut point_groups: Vec<Vec<usize>> = Vec::new();
                for (arm_idx, builder) in point_builders.iter().enumerate() {
                    if self.share_scenarios {
                        if let Some(group) = point_groups
                            .iter_mut()
                            .find(|group| &point_builders[group[0]] == builder)
                        {
                            group.push(arm_idx);
                            continue;
                        }
                    }
                    point_groups.push(vec![arm_idx]);
                }
                point_groups
            })
            .collect();

        enum Cell {
            Computed(Option<CellOutput>),
            Failed(CoreError),
            /// Not evaluated because some cell (of this group or an earlier one) failed.
            Skipped,
        }

        let failed = std::sync::atomic::AtomicBool::new(false);
        let scenarios_built = AtomicUsize::new(0);
        let cells_evaluated = AtomicUsize::new(0);
        // One cell-group = all arms of one (point, seed); returns one Cell per arm.
        let evaluate_group = |ws: &mut SolverWorkspace, item: usize| -> Vec<Cell> {
            let mut cells: Vec<Cell> = (0..n_arms).map(|_| Cell::Skipped).collect();
            if failed.load(Ordering::Relaxed) {
                return cells;
            }
            let point_idx = item / n_seeds;
            let seed = grid.seeds[item % n_seeds];
            for group in &groups[point_idx] {
                // A build is the expensive step worth skipping once some other worker has
                // already failed the sweep.
                if failed.load(Ordering::Relaxed) {
                    return cells;
                }
                let scenario = match builders[point_idx][group[0]].build(seed) {
                    Ok(scenario) => {
                        scenarios_built.fetch_add(1, Ordering::Relaxed);
                        scenario
                    }
                    Err(e) => {
                        failed.store(true, Ordering::Relaxed);
                        cells[group[0]] = Cell::Failed(CoreError::from(e));
                        return cells;
                    }
                };
                for &arm_idx in group {
                    // Another worker may have failed while this group was mid-flight:
                    // abandon the remaining (expensive) cells at the next cell boundary
                    // rather than draining the whole group. Output is unaffected — the
                    // sweep returns the surfaced error either way.
                    if failed.load(Ordering::Relaxed) {
                        return cells;
                    }
                    let mut ctx = CellContext {
                        x: grid.points[point_idx].x,
                        seed,
                        stream_seed: baselines::derive_stream_seed(seed),
                        point_idx,
                        arm_idx,
                        workspace: &mut *ws,
                    };
                    cells_evaluated.fetch_add(1, Ordering::Relaxed);
                    match grid.arms[arm_idx].evaluate(&scenario, &mut ctx) {
                        Ok(sample) => cells[arm_idx] = Cell::Computed(sample),
                        Err(e) => {
                            failed.store(true, Ordering::Relaxed);
                            cells[arm_idx] = Cell::Failed(e);
                            return cells;
                        }
                    }
                }
            }
            cells
        };

        let mut group_outputs = par_map_indexed_with(
            n_points * n_seeds,
            self.threads(),
            SolverWorkspace::new,
            evaluate_group,
        );

        // Re-slot the (point, seed)-major group outputs into (point, arm, seed) order and
        // surface the lowest-slot-indexed error among the evaluated cells.
        let mut samples: Vec<Option<CellOutput>> = Vec::with_capacity(grid.num_cells());
        let mut first_error: Option<CoreError> = None;
        let mut skipped = 0usize;
        // The read below transposes (item, arm) into (point, arm, seed) slot order, so
        // index arithmetic is clearer than nested iterators here.
        #[allow(clippy::needless_range_loop)]
        for p in 0..n_points {
            for a in 0..n_arms {
                for s in 0..n_seeds {
                    let cell =
                        std::mem::replace(&mut group_outputs[p * n_seeds + s][a], Cell::Skipped);
                    match cell {
                        Cell::Computed(sample) => samples.push(sample),
                        Cell::Failed(e) => {
                            if first_error.is_none() {
                                first_error = Some(e);
                            }
                        }
                        Cell::Skipped => skipped += 1,
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        debug_assert_eq!(skipped, 0, "skips must imply a surfaced failure");
        debug_assert_eq!(samples.len(), grid.num_cells());

        let aggregates: Vec<Vec<Aggregate>> = (0..n_points)
            .map(|p| {
                (0..n_arms)
                    .map(|a| {
                        let base = (p * n_arms + a) * n_seeds;
                        Aggregate::from_samples(&samples[base..base + n_seeds])
                    })
                    .collect()
            })
            .collect();

        Ok(SweepResult {
            xs: grid.points.iter().map(|p| p.x).collect(),
            arm_names: grid.arms.iter().map(|a| a.name()).collect(),
            aggregates,
            counters: SweepCounters {
                scenarios_built: scenarios_built.into_inner(),
                cells_evaluated: cells_evaluated.into_inner(),
            },
        })
    }
}

/// Maps `f` over `0..n` using up to `threads` scoped workers and returns the outputs in
/// index order.
///
/// Stateless convenience wrapper over [`par_map_indexed_with`].
pub fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_with(n, threads, || (), |_, idx| f(idx))
}

/// Maps `f` over `0..n` using up to `threads` scoped workers, each owning one worker state
/// created by `init` (the engine's per-worker [`SolverWorkspace`]), and returns the outputs
/// in index order.
///
/// Work is distributed by an atomic cursor (dynamic scheduling — solver cells vary wildly
/// in cost), but each worker tags outputs with their index and the final vector is
/// assembled by index, so the result is identical to the sequential map *provided `f` is a
/// pure function of its index* — the worker state must be scratch, never carried signal
/// (which is exactly the [`SolverWorkspace`] contract). With one thread — or one item — no
/// worker threads are spawned at all and a single state serves the whole range.
pub fn par_map_indexed_with<S, T, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.min(n).max(1);
    if workers == 1 {
        let mut state = init();
        return (0..n).map(|idx| f(&mut state, idx)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let init = &init;
    let f = &f;
    let cursor = &cursor;
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        local.push((idx, f(&mut state, idx)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("sweep worker panicked")).collect()
    });
    tagged.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests_support {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Test arm that errors on one seed of the first point and counts evaluations.
    pub struct FailingArm {
        pub evaluated: Arc<AtomicUsize>,
        pub fail_seed: u64,
    }

    impl Arm for FailingArm {
        fn name(&self) -> String {
            "failing".to_string()
        }

        fn evaluate(
            &self,
            _scenario: &Scenario,
            ctx: &mut CellContext<'_>,
        ) -> Result<Option<CellOutput>, CoreError> {
            self.evaluated.fetch_add(1, Ordering::Relaxed);
            if ctx.point_idx == 0 && ctx.seed == self.fail_seed {
                return Err(CoreError::SolverFailure("injected".to_string()));
            }
            Ok(Some(CellOutput::new(1.0, 1.0)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arms::ProposedArm;
    use fedopt_core::SolverConfig;
    use flsys::Weights;

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let f = |i: usize| (i * 31) % 17;
        let expected: Vec<usize> = (0..100).map(f).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(par_map_indexed(100, threads, f), expected);
        }
        assert_eq!(par_map_indexed(0, 4, f), Vec::<usize>::new());
    }

    #[test]
    fn aggregate_of_no_feasible_samples_is_labelled_not_silent() {
        let agg = Aggregate::from_samples(&[None, None, None]);
        assert_eq!(agg.count, 0);
        assert_eq!(agg.attempts, 3);
        assert!(agg.mean_energy_j.is_nan());
        let some = Aggregate::from_samples(&[Some(CellOutput::new(2.0, 4.0)), None]);
        assert_eq!(some.count, 1);
        assert_eq!(some.attempts, 2);
        assert_eq!(some.mean_energy_j, 2.0);
        assert_eq!(some.mean_time_s, 4.0);
        assert_eq!(some.std_energy_j, 0.0);
    }

    #[test]
    fn aggregate_mean_and_std_are_correct() {
        let agg = Aggregate::from_samples(&[
            Some(CellOutput::new(1.0, 10.0)),
            Some(CellOutput::new(3.0, 30.0)),
        ]);
        assert_eq!(agg.mean_energy_j, 2.0);
        assert_eq!(agg.mean_time_s, 20.0);
        assert_eq!(agg.std_energy_j, 1.0);
        assert_eq!(agg.std_time_s, 10.0);
        assert_eq!(agg.count, 2);
    }

    #[test]
    fn first_error_aborts_the_sweep_instead_of_draining_the_grid() {
        use crate::engine::tests_support::FailingArm;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let evaluated = Arc::new(AtomicUsize::new(0));
        let builder = flsys::ScenarioBuilder::paper_default().with_devices(2);
        let mut grid = SweepGrid::new((1..=4).collect::<Vec<u64>>());
        for x in 0..6 {
            grid = grid.point(f64::from(x), builder.clone());
        }
        let grid = grid.arm(FailingArm { evaluated: Arc::clone(&evaluated), fail_seed: 2 });

        let err = SweepEngine::single_thread().run(&grid).unwrap_err();
        assert!(matches!(err, CoreError::SolverFailure(ref m) if m == "injected"), "{err:?}");
        // Sequentially the failure at cell 1 (point 0, seed 2) stops the sweep: seed 1
        // succeeded, seed 2 failed, and the remaining 22 cells were never evaluated.
        assert_eq!(evaluated.load(Ordering::Relaxed), 2);

        // A parallel run also aborts (in-flight cells may still finish, so only an upper
        // bound is deterministic) and surfaces the same error type.
        evaluated.store(0, Ordering::Relaxed);
        let err = SweepEngine::with_threads(4).run(&grid).unwrap_err();
        assert!(matches!(err, CoreError::SolverFailure(_)));
        assert!(evaluated.load(Ordering::Relaxed) <= grid.num_cells());
    }

    #[test]
    fn scenario_builds_are_shared_per_prepared_builder_and_match_unshared() {
        use crate::arms::ConfiguredArm;

        let solver = SolverConfig::fast();
        let grid = || {
            let mut grid = SweepGrid::new(vec![1u64, 2, 3]);
            for x in [6.0, 12.0] {
                grid = grid.point(
                    x,
                    flsys::ScenarioBuilder::paper_default().with_devices(5).with_p_max_dbm(x),
                );
            }
            // Two arms with the default prepare share one build; the configured arm's
            // distinct builder gets its own.
            grid.arm(ProposedArm::new(Weights::balanced(), solver))
                .arm(ProposedArm::new(Weights::new(0.9, 0.1).unwrap(), solver))
                .arm(
                    ConfiguredArm::new(ProposedArm::new(Weights::balanced(), solver))
                        .named("N = 3")
                        .with_builder(|b| b.with_devices(3)),
                )
        };
        let (points, seeds, arms, distinct_builders) = (2, 3, 3, 2);

        let shared = SweepEngine::single_thread().run(&grid()).unwrap();
        assert_eq!(shared.counters.scenarios_built, points * seeds * distinct_builders);
        assert_eq!(shared.counters.cells_evaluated, points * seeds * arms);

        let unshared =
            SweepEngine::single_thread().with_scenario_sharing(false).run(&grid()).unwrap();
        assert_eq!(unshared.counters.scenarios_built, points * seeds * arms);
        assert_eq!(unshared.counters.cells_evaluated, points * seeds * arms);

        // Sharing must never change the numbers — only how often scenarios are rebuilt.
        assert_eq!(shared.aggregates, unshared.aggregates);
        assert_eq!(shared.xs, unshared.xs);
        assert_eq!(shared.arm_names, unshared.arm_names);
    }

    #[test]
    fn engine_is_deterministic_across_thread_counts() {
        let grid = |seeds: &[u64]| {
            SweepGrid::new(seeds)
                .point(
                    6.0,
                    flsys::ScenarioBuilder::paper_default().with_devices(5).with_p_max_dbm(6.0),
                )
                .point(
                    12.0,
                    flsys::ScenarioBuilder::paper_default().with_devices(5).with_p_max_dbm(12.0),
                )
                .arm(ProposedArm::new(Weights::balanced(), SolverConfig::fast()))
        };
        let single = SweepEngine::single_thread().run(&grid(&[1, 2, 3])).unwrap();
        let multi = SweepEngine::with_threads(4).run(&grid(&[1, 2, 3])).unwrap();
        assert_eq!(single, multi);
    }
}
