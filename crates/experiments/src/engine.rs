//! The parallel sweep engine behind every figure of the evaluation.
//!
//! The paper's protocol (Section VII) averages each figure point over many random scenario
//! draws. That grid — sweep point × scheme ("arm") × scenario seed — is embarrassingly
//! parallel, and this module evaluates it as such: a [`SweepGrid`] declares the cells, a
//! [`SweepEngine`] evaluates them across threads, and the per-(point, arm) results are
//! reduced into [`Aggregate`]s (mean / standard deviation / feasible-sample count) that
//! [`SweepResult`] turns into [`FigureReport`]s.
//!
//! # Seeding scheme
//!
//! Determinism is independent of thread count and scheduling because no randomness flows
//! through iteration order; every cell's inputs are pure functions of its *coordinates*:
//!
//! * **Scenario stream** — the cell's scenario is `builder.build(seed)`, where `seed` is the
//!   cell's entry from [`SweepGrid::seeds`] and the builder is derived from the cell's point
//!   (and arm, via [`Arm::prepare`]) alone. Every arm at a sweep point therefore sees *the
//!   same* scenario realisations — schemes are compared on identical draws, as in the paper.
//! * **Arm stream** — arms with internal randomness (the random benchmark) must not reuse
//!   the scenario seed, or their draws would be correlated with the channel realisations.
//!   Each cell carries [`CellContext::stream_seed`], produced by
//!   [`baselines::derive_stream_seed`] from the base seed (historically `seed ^ 0x9e37_79b9`,
//!   now defined in exactly one place).
//! * **Reduction order** — per-cell outputs are written to slots indexed by
//!   `(point, arm, seed)` and reduced sequentially in seed order, so floating-point sums are
//!   bit-identical between a single-threaded and an N-threaded run (verified by a
//!   regression test against the historical sequential helpers).
//!
//! Cells that report infeasibility ([`Arm::evaluate`] returning `Ok(None)`) are recorded,
//! not averaged: an [`Aggregate`] with `count == 0` keeps `NaN` means but the per-cell
//! sample counts travel with the [`FigureReport`], so "no feasible draw" is a labelled
//! condition instead of a silent `NaN`.
//!
//! Threading uses a scoped work-stealing map over `std::thread` (see [`par_map_indexed`]);
//! the environment cannot fetch `rayon`, and the engine needs nothing more than an indexed
//! parallel map.

use crate::report::FigureReport;
use fedopt_core::CoreError;
use flsys::{Scenario, ScenarioBuilder};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One evaluated cell: the totals the figures plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellOutput {
    /// Total energy consumption in joules.
    pub energy_j: f64,
    /// Total completion time in seconds.
    pub time_s: f64,
}

impl CellOutput {
    /// Creates a cell output from the two totals.
    pub fn new(energy_j: f64, time_s: f64) -> Self {
        Self { energy_j, time_s }
    }
}

/// The coordinates and derived seeds of the cell being evaluated.
#[derive(Debug, Clone, Copy)]
pub struct CellContext {
    /// The sweep point's x value (e.g. `p_max` in dBm for Figure 2, the deadline in seconds
    /// for Figure 7).
    pub x: f64,
    /// The base (scenario) seed of this cell.
    pub seed: u64,
    /// The decorrelated stream seed for arm-internal randomness
    /// ([`baselines::derive_stream_seed`] of [`Self::seed`]).
    pub stream_seed: u64,
    /// Index of the sweep point within [`SweepGrid::points`].
    pub point_idx: usize,
    /// Index of the arm within [`SweepGrid::arms`].
    pub arm_idx: usize,
}

/// One scheme being swept: a column of the resulting figure.
///
/// Implementations must be [`Send`] + [`Sync`]; the engine shares them across worker
/// threads by reference and must never observe interior mutability across cells (that
/// would break run-to-run determinism).
pub trait Arm: Send + Sync {
    /// The column name, e.g. `"proposed w1=0.9,w2=0.1"` or `"benchmark"`.
    fn name(&self) -> String;

    /// Hook to specialise the sweep point's scenario builder for this arm (e.g. Figure 5's
    /// per-series device counts). The default keeps the point's builder unchanged.
    fn prepare(&self, builder: &ScenarioBuilder) -> ScenarioBuilder {
        builder.clone()
    }

    /// Evaluates one cell. `Ok(None)` marks an infeasible cell (skipped by the aggregate,
    /// counted in [`Aggregate::attempts`] only); errors abort the sweep.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] other than "this cell is infeasible" (which is `Ok(None)`).
    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &CellContext,
    ) -> Result<Option<CellOutput>, CoreError>;
}

/// One sweep point: the x value and the scenario builder all arms share there.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// The x-axis value this point is plotted at.
    pub x: f64,
    /// Builder for the scenarios of this point (before [`Arm::prepare`]).
    pub builder: ScenarioBuilder,
}

/// The declarative evaluation grid: points × arms × seeds.
pub struct SweepGrid {
    /// The sweep points, in x-axis order.
    pub points: Vec<GridPoint>,
    /// The schemes, in column order.
    pub arms: Vec<Box<dyn Arm>>,
    /// The base scenario seeds averaged over, shared by every (point, arm).
    pub seeds: Vec<u64>,
}

impl SweepGrid {
    /// Creates an empty grid over the given scenario seeds.
    pub fn new(seeds: impl Into<Vec<u64>>) -> Self {
        Self { points: Vec::new(), arms: Vec::new(), seeds: seeds.into() }
    }

    /// Adds a sweep point.
    #[must_use]
    pub fn point(mut self, x: f64, builder: ScenarioBuilder) -> Self {
        self.points.push(GridPoint { x, builder });
        self
    }

    /// Adds an arm (column).
    #[must_use]
    pub fn arm(mut self, arm: impl Arm + 'static) -> Self {
        self.arms.push(Box::new(arm));
        self
    }

    /// Total number of cells the grid will evaluate.
    pub fn num_cells(&self) -> usize {
        self.points.len() * self.arms.len() * self.seeds.len()
    }
}

/// Mean / spread / sample-count summary of one (point, arm) across the seed draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Mean total energy over the feasible draws (`NaN` when `count == 0`).
    pub mean_energy_j: f64,
    /// Mean total completion time over the feasible draws (`NaN` when `count == 0`).
    pub mean_time_s: f64,
    /// Population standard deviation of the energy over the feasible draws.
    pub std_energy_j: f64,
    /// Population standard deviation of the completion time over the feasible draws.
    pub std_time_s: f64,
    /// Number of feasible draws behind the means.
    pub count: usize,
    /// Number of draws evaluated (feasible or not).
    pub attempts: usize,
}

impl Aggregate {
    /// Reduces the per-seed outputs of one (point, arm), in seed order.
    ///
    /// Summation order is fixed (seed order), so the result is bit-identical regardless of
    /// which threads produced the samples — and matches the historical sequential helpers,
    /// which accumulated in the same order.
    pub fn from_samples(samples: &[Option<CellOutput>]) -> Self {
        let attempts = samples.len();
        let feasible: Vec<CellOutput> = samples.iter().flatten().copied().collect();
        let count = feasible.len();
        if count == 0 {
            return Self {
                mean_energy_j: f64::NAN,
                mean_time_s: f64::NAN,
                std_energy_j: f64::NAN,
                std_time_s: f64::NAN,
                count: 0,
                attempts,
            };
        }
        let n = count as f64;
        let mut energy = 0.0;
        let mut time = 0.0;
        for s in &feasible {
            energy += s.energy_j;
            time += s.time_s;
        }
        let (mean_energy_j, mean_time_s) = (energy / n, time / n);
        let mut var_e = 0.0;
        let mut var_t = 0.0;
        for s in &feasible {
            var_e += (s.energy_j - mean_energy_j) * (s.energy_j - mean_energy_j);
            var_t += (s.time_s - mean_time_s) * (s.time_s - mean_time_s);
        }
        Self {
            mean_energy_j,
            mean_time_s,
            std_energy_j: (var_e / n).sqrt(),
            std_time_s: (var_t / n).sqrt(),
            count,
            attempts,
        }
    }
}

/// The evaluated grid: one [`Aggregate`] per (point, arm).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The x value of every sweep point, in grid order.
    pub xs: Vec<f64>,
    /// The arm (column) names, in grid order.
    pub arm_names: Vec<String>,
    /// `aggregates[point_idx][arm_idx]`.
    pub aggregates: Vec<Vec<Aggregate>>,
}

impl SweepResult {
    /// Builds a [`FigureReport`] from one metric of the aggregates, carrying the per-cell
    /// feasible-sample counts.
    pub fn report(
        &self,
        id: &str,
        title: &str,
        x_label: &str,
        y_label: &str,
        metric: impl Fn(&Aggregate) -> f64,
    ) -> FigureReport {
        let mut report = FigureReport::new(id, title, x_label, y_label, self.arm_names.clone());
        for (x, row) in self.xs.iter().zip(&self.aggregates) {
            report.push_row_with_counts(
                *x,
                row.iter().map(&metric).collect(),
                row.iter().map(|a| a.count).collect(),
            );
        }
        report
    }

    /// The mean-total-energy report.
    pub fn energy_report(&self, id: &str, title: &str, x_label: &str) -> FigureReport {
        self.report(id, title, x_label, "total energy (J)", |a| a.mean_energy_j)
    }

    /// The mean-total-completion-time report.
    pub fn time_report(&self, id: &str, title: &str, x_label: &str) -> FigureReport {
        self.report(id, title, x_label, "total time (s)", |a| a.mean_time_s)
    }
}

/// Evaluates [`SweepGrid`]s in parallel with deterministic output.
#[derive(Debug, Clone, Copy)]
pub struct SweepEngine {
    threads: NonZeroUsize,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine using all available CPU parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN);
        Self { threads }
    }

    /// An engine with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is nonzero") }
    }

    /// A sequential engine — useful as the reference in determinism tests.
    pub fn single_thread() -> Self {
        Self::with_threads(1)
    }

    /// The worker count this engine will use.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Evaluates every cell of the grid and reduces the per-(point, arm) aggregates.
    ///
    /// # Errors
    ///
    /// A hard cell error aborts the sweep: workers stop picking up new cells as soon as
    /// one fails (in-flight cells still finish), so a deterministic early failure does not
    /// burn through the rest of an expensive grid. The error surfaced is the failing cell
    /// with the lowest `(point, arm, seed)` index among those evaluated — with one thread
    /// that is exactly the error the historical sequential loops surfaced; with more,
    /// scheduling decides which failing cells were reached first. Infeasible cells
    /// (`Ok(None)`) are not errors.
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepResult, CoreError> {
        let n_arms = grid.arms.len();
        let n_seeds = grid.seeds.len();
        // Builders are pure data; specialise them once per (point, arm) up front.
        let builders: Vec<Vec<ScenarioBuilder>> = grid
            .points
            .iter()
            .map(|p| grid.arms.iter().map(|a| a.prepare(&p.builder)).collect())
            .collect();

        enum Cell {
            Computed(Option<CellOutput>),
            Failed(CoreError),
            /// Not evaluated because some other cell had already failed.
            Skipped,
        }

        let failed = std::sync::atomic::AtomicBool::new(false);
        let evaluate_cell = |cell: usize| -> Cell {
            if failed.load(Ordering::Relaxed) {
                return Cell::Skipped;
            }
            let point_idx = cell / (n_arms * n_seeds);
            let arm_idx = (cell / n_seeds) % n_arms;
            let seed = grid.seeds[cell % n_seeds];
            let ctx = CellContext {
                x: grid.points[point_idx].x,
                seed,
                stream_seed: baselines::derive_stream_seed(seed),
                point_idx,
                arm_idx,
            };
            let outcome = builders[point_idx][arm_idx]
                .build(seed)
                .map_err(CoreError::from)
                .and_then(|scenario| grid.arms[arm_idx].evaluate(&scenario, &ctx));
            match outcome {
                Ok(sample) => Cell::Computed(sample),
                Err(e) => {
                    failed.store(true, Ordering::Relaxed);
                    Cell::Failed(e)
                }
            }
        };

        let outputs = par_map_indexed(grid.num_cells(), self.threads(), evaluate_cell);

        // Surface the lowest-indexed error among the evaluated cells.
        let mut cells = Vec::with_capacity(outputs.len());
        for out in outputs {
            match out {
                Cell::Computed(sample) => cells.push(sample),
                Cell::Failed(e) => return Err(e),
                Cell::Skipped => {
                    // A skip implies some cell failed; keep scanning to find and return it.
                    continue;
                }
            }
        }
        debug_assert_eq!(cells.len(), grid.num_cells(), "skips must imply a surfaced failure");

        let aggregates: Vec<Vec<Aggregate>> = (0..grid.points.len())
            .map(|p| {
                (0..n_arms)
                    .map(|a| {
                        let base = (p * n_arms + a) * n_seeds;
                        Aggregate::from_samples(&cells[base..base + n_seeds])
                    })
                    .collect()
            })
            .collect();

        Ok(SweepResult {
            xs: grid.points.iter().map(|p| p.x).collect(),
            arm_names: grid.arms.iter().map(|a| a.name()).collect(),
            aggregates,
        })
    }
}

/// Maps `f` over `0..n` using up to `threads` scoped workers and returns the outputs in
/// index order.
///
/// Work is distributed by an atomic cursor (dynamic scheduling — solver cells vary wildly
/// in cost), but each worker tags outputs with their index and the final vector is
/// assembled by index, so the result is identical to the sequential map. With one thread —
/// or one cell — no worker threads are spawned at all.
pub fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.min(n).max(1);
    if workers == 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        local.push((idx, f(idx)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("sweep worker panicked")).collect()
    });
    tagged.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests_support {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Test arm that errors on one seed of the first point and counts evaluations.
    pub struct FailingArm {
        pub evaluated: Arc<AtomicUsize>,
        pub fail_seed: u64,
    }

    impl Arm for FailingArm {
        fn name(&self) -> String {
            "failing".to_string()
        }

        fn evaluate(
            &self,
            _scenario: &Scenario,
            ctx: &CellContext,
        ) -> Result<Option<CellOutput>, CoreError> {
            self.evaluated.fetch_add(1, Ordering::Relaxed);
            if ctx.point_idx == 0 && ctx.seed == self.fail_seed {
                return Err(CoreError::SolverFailure("injected".to_string()));
            }
            Ok(Some(CellOutput::new(1.0, 1.0)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arms::ProposedArm;
    use fedopt_core::SolverConfig;
    use flsys::Weights;

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let f = |i: usize| (i * 31) % 17;
        let expected: Vec<usize> = (0..100).map(f).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(par_map_indexed(100, threads, f), expected);
        }
        assert_eq!(par_map_indexed(0, 4, f), Vec::<usize>::new());
    }

    #[test]
    fn aggregate_of_no_feasible_samples_is_labelled_not_silent() {
        let agg = Aggregate::from_samples(&[None, None, None]);
        assert_eq!(agg.count, 0);
        assert_eq!(agg.attempts, 3);
        assert!(agg.mean_energy_j.is_nan());
        let some = Aggregate::from_samples(&[Some(CellOutput::new(2.0, 4.0)), None]);
        assert_eq!(some.count, 1);
        assert_eq!(some.attempts, 2);
        assert_eq!(some.mean_energy_j, 2.0);
        assert_eq!(some.mean_time_s, 4.0);
        assert_eq!(some.std_energy_j, 0.0);
    }

    #[test]
    fn aggregate_mean_and_std_are_correct() {
        let agg = Aggregate::from_samples(&[
            Some(CellOutput::new(1.0, 10.0)),
            Some(CellOutput::new(3.0, 30.0)),
        ]);
        assert_eq!(agg.mean_energy_j, 2.0);
        assert_eq!(agg.mean_time_s, 20.0);
        assert_eq!(agg.std_energy_j, 1.0);
        assert_eq!(agg.std_time_s, 10.0);
        assert_eq!(agg.count, 2);
    }

    #[test]
    fn first_error_aborts_the_sweep_instead_of_draining_the_grid() {
        use crate::engine::tests_support::FailingArm;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let evaluated = Arc::new(AtomicUsize::new(0));
        let builder = flsys::ScenarioBuilder::paper_default().with_devices(2);
        let mut grid = SweepGrid::new((1..=4).collect::<Vec<u64>>());
        for x in 0..6 {
            grid = grid.point(f64::from(x), builder.clone());
        }
        let grid = grid.arm(FailingArm { evaluated: Arc::clone(&evaluated), fail_seed: 2 });

        let err = SweepEngine::single_thread().run(&grid).unwrap_err();
        assert!(matches!(err, CoreError::SolverFailure(ref m) if m == "injected"), "{err:?}");
        // Sequentially the failure at cell 1 (point 0, seed 2) stops the sweep: seed 1
        // succeeded, seed 2 failed, and the remaining 22 cells were never evaluated.
        assert_eq!(evaluated.load(Ordering::Relaxed), 2);

        // A parallel run also aborts (in-flight cells may still finish, so only an upper
        // bound is deterministic) and surfaces the same error type.
        evaluated.store(0, Ordering::Relaxed);
        let err = SweepEngine::with_threads(4).run(&grid).unwrap_err();
        assert!(matches!(err, CoreError::SolverFailure(_)));
        assert!(evaluated.load(Ordering::Relaxed) <= grid.num_cells());
    }

    #[test]
    fn engine_is_deterministic_across_thread_counts() {
        let grid = |seeds: &[u64]| {
            SweepGrid::new(seeds)
                .point(
                    6.0,
                    flsys::ScenarioBuilder::paper_default().with_devices(5).with_p_max_dbm(6.0),
                )
                .point(
                    12.0,
                    flsys::ScenarioBuilder::paper_default().with_devices(5).with_p_max_dbm(12.0),
                )
                .arm(ProposedArm::new(Weights::balanced(), SolverConfig::fast()))
        };
        let single = SweepEngine::single_thread().run(&grid(&[1, 2, 3])).unwrap();
        let multi = SweepEngine::with_threads(4).run(&grid(&[1, 2, 3])).unwrap();
        assert_eq!(single, multi);
    }
}
