//! The parallel sweep engine behind every figure of the evaluation.
//!
//! The paper's protocol (Section VII) averages each figure point over many random scenario
//! draws (100 per point in the paper's setup). That grid — sweep point × scheme ("arm") ×
//! scenario seed — is embarrassingly parallel, and this module evaluates it as such: a
//! [`SweepGrid`] declares the cells, a [`SweepEngine`] evaluates them across threads, and
//! the per-(point, arm) results are reduced into [`Aggregate`]s (mean / standard deviation /
//! feasible-sample count) that [`SweepResult`] turns into [`FigureReport`]s.
//!
//! # Cell-group architecture
//!
//! The unit of parallel work is a **(point, seed) cell-group**, not a single cell. All arms
//! at a sweep point see the same scenario realisation per seed, so the engine builds each
//! scenario **once** per group and evaluates every arm of the group against the shared
//! build by reference — scenario builds drop from `points × arms × seeds` to
//! `points × seeds`. Arms that specialise their builder via [`Arm::prepare`] (Figures 5 and
//! 6 sweep per-arm device/round counts) are grouped by *identical prepared builder*, so
//! only genuinely distinct scenarios are built. [`SweepResult::counters`] reports scenarios
//! built vs cells evaluated; [`SweepEngine::with_scenario_sharing`] can disable the sharing
//! (one build per cell, the historical behaviour) — a regression test asserts both paths
//! are bit-identical.
//!
//! Each worker thread owns one [`SolverWorkspace`] for its whole share of the grid and
//! threads it through [`CellContext::workspace`], so the solver hot path reuses one set of
//! per-device buffers instead of allocating per cell (the workspace is pure scratch — see
//! `fedopt_core::workspace` for the contract).
//!
//! # Seeding scheme
//!
//! Determinism is independent of thread count and scheduling because no randomness flows
//! through iteration order; every cell's inputs are pure functions of its *coordinates*:
//!
//! * **Scenario stream** — the cell's scenario is `builder.build(seed)`, where `seed` is the
//!   cell's entry from [`SweepGrid::seeds`] and the builder is derived from the cell's point
//!   (and arm, via [`Arm::prepare`]) alone. Every arm at a sweep point therefore sees *the
//!   same* scenario realisations — schemes are compared on identical draws, as in the paper
//!   (the cell-group sharing above merely stops re-building what is identical by
//!   construction).
//! * **Arm stream** — arms with internal randomness (the random benchmark) must not reuse
//!   the scenario seed, or their draws would be correlated with the channel realisations.
//!   Each cell carries [`CellContext::stream_seed`], produced by
//!   [`baselines::derive_stream_seed`] from the base seed (historically `seed ^ 0x9e37_79b9`,
//!   now defined in exactly one place).
//! * **Reduction order** — per-cell outputs are written to slots indexed by
//!   `(point, arm, seed)` and reduced sequentially in seed order, so floating-point sums are
//!   bit-identical between a single-threaded and an N-threaded run (verified by a
//!   regression test against the historical sequential helpers).
//!
//! Cells that report infeasibility ([`Arm::evaluate`] returning `Ok(None)`) are recorded,
//! not averaged: an [`Aggregate`] with `count == 0` keeps `NaN` means but the per-cell
//! sample counts travel with the [`FigureReport`], so "no feasible draw" is a labelled
//! condition instead of a silent `NaN`.
//!
//! Threading uses a scoped work-stealing map over `std::thread` (see [`par_map_indexed`]
//! and its stateful sibling [`par_map_indexed_with`]); the environment cannot fetch
//! `rayon`, and the engine needs nothing more than an indexed parallel map.

use crate::report::FigureReport;
use fedopt_core::{CoreError, SolveCounters, SolverConfig, SolverWorkspace};
use flsys::{Scenario, ScenarioBuilder};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// One evaluated cell: the totals the figures plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellOutput {
    /// Total energy consumption in joules.
    pub energy_j: f64,
    /// Total completion time in seconds.
    pub time_s: f64,
}

impl CellOutput {
    /// Creates a cell output from the two totals.
    pub fn new(energy_j: f64, time_s: f64) -> Self {
        Self { energy_j, time_s }
    }
}

/// The coordinates, derived seeds and per-worker scratch of the cell being evaluated.
#[derive(Debug)]
pub struct CellContext<'a> {
    /// The sweep point's x value (e.g. `p_max` in dBm for Figure 2, the deadline in seconds
    /// for Figure 7).
    pub x: f64,
    /// The base (scenario) seed of this cell.
    pub seed: u64,
    /// The decorrelated stream seed for arm-internal randomness
    /// ([`baselines::derive_stream_seed`] of [`Self::seed`]).
    pub stream_seed: u64,
    /// Index of the sweep point within [`SweepGrid::points`].
    pub point_idx: usize,
    /// Index of the arm within [`SweepGrid::arms`].
    pub arm_idx: usize,
    /// Whether this sweep runs with the warm-start continuation
    /// ([`SweepEngine::with_warm_start`]). Arms must gate their solver configuration
    /// through [`CellContext::solver_config`] so the engine-level switch wins over
    /// whatever the arm was constructed with.
    pub warm_start: bool,
    /// Whether this sweep runs with the superlinear (Brent) `μ`-root step
    /// ([`SweepEngine::with_superlinear_mu`]); gated through
    /// [`CellContext::solver_config`] like [`Self::warm_start`].
    pub superlinear_mu: bool,
    /// Whether this sweep carries the adaptive warm `μ`-bracket width across the solves of
    /// a cell-group ([`SweepEngine::with_adaptive_mu_bracket`]); gated through
    /// [`CellContext::solver_config`] like [`Self::warm_start`].
    pub adaptive_mu_bracket: bool,
    /// Whether the solve may re-open Algorithm 2's outer loop at the workspace's carried
    /// best allocation (`SolverConfig::outer_continuation`). Always `false` in sweeps —
    /// every cell must have a trajectory independent of workspace history — and enabled
    /// per request by the serving loop (`crate::serve`) on a warm-cache hit, where the
    /// fingerprint guarantees the carried state belongs to the same problem.
    pub outer_continuation: bool,
    /// The worker thread's reusable solver workspace. Pure scratch (see
    /// `fedopt_core::workspace` for the contract): arms may hand it to any `*_with` solver
    /// entry point but must not expect state to survive between cells. With warm start
    /// enabled, solver state *does* carry between the cells of one (point, seed, scenario)
    /// group — in the grid's fixed arm order, reset by the engine at every group boundary,
    /// so results stay bit-identical across thread counts.
    pub workspace: &'a mut SolverWorkspace,
}

impl CellContext<'_> {
    /// The arm's solver configuration with the engine's warm-start switch applied: the
    /// sweep-level [`SweepEngine::with_warm_start`] decision overrides the config the arm
    /// was built with, so one engine flag flips the whole grid between the bit-exact cold
    /// reference path and the warm continuation.
    pub fn solver_config(&self, base: &SolverConfig) -> SolverConfig {
        base.with_warm_start(self.warm_start)
            .with_superlinear_mu(self.superlinear_mu)
            .with_adaptive_mu_bracket(self.adaptive_mu_bracket)
            .with_outer_continuation(self.outer_continuation)
    }
}

/// One scheme being swept: a column of the resulting figure.
///
/// Implementations must be [`Send`] + [`Sync`]; the engine shares them across worker
/// threads by reference and must never observe interior mutability across cells (that
/// would break run-to-run determinism). Per-cell mutable scratch belongs in
/// [`CellContext::workspace`], which the engine owns per worker thread.
pub trait Arm: Send + Sync {
    /// The column name, e.g. `"proposed w1=0.9,w2=0.1"` or `"benchmark"`.
    fn name(&self) -> String;

    /// Hook to specialise the sweep point's scenario builder for this arm (e.g. Figure 5's
    /// per-series device counts). The default keeps the point's builder unchanged.
    ///
    /// Arms whose prepared builders compare equal (the default does, trivially) share one
    /// scenario build per (point, seed) cell-group.
    fn prepare(&self, builder: &ScenarioBuilder) -> ScenarioBuilder {
        builder.clone()
    }

    /// Evaluates one cell. `Ok(None)` marks an infeasible cell (skipped by the aggregate,
    /// counted in [`Aggregate::attempts`] only); errors abort the sweep.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] other than "this cell is infeasible" (which is `Ok(None)`).
    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError>;
}

/// A boxed arm is an arm — what lets spec-compiled grids mix heterogeneous arms (and
/// wrap them in [`crate::arms::ConfiguredArm`]) behind one type. Every method delegates,
/// `prepare` included: dropping the delegation would silently fall back to the default
/// identity `prepare` and break per-arm builder specialisation.
impl Arm for Box<dyn Arm> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn prepare(&self, builder: &ScenarioBuilder) -> ScenarioBuilder {
        self.as_ref().prepare(builder)
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError> {
        self.as_ref().evaluate(scenario, ctx)
    }
}

/// One sweep point: the x value and the scenario builder all arms share there.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// The x-axis value this point is plotted at.
    pub x: f64,
    /// Builder for the scenarios of this point (before [`Arm::prepare`]).
    pub builder: ScenarioBuilder,
}

/// The declarative evaluation grid: points × arms × seeds.
pub struct SweepGrid {
    /// The sweep points, in x-axis order.
    pub points: Vec<GridPoint>,
    /// The schemes, in column order.
    pub arms: Vec<Box<dyn Arm>>,
    /// The base scenario seeds averaged over, shared by every (point, arm).
    pub seeds: Vec<u64>,
}

impl SweepGrid {
    /// Creates an empty grid over the given scenario seeds.
    pub fn new(seeds: impl Into<Vec<u64>>) -> Self {
        Self { points: Vec::new(), arms: Vec::new(), seeds: seeds.into() }
    }

    /// Adds a sweep point.
    #[must_use]
    pub fn point(mut self, x: f64, builder: ScenarioBuilder) -> Self {
        self.points.push(GridPoint { x, builder });
        self
    }

    /// Adds an arm (column).
    #[must_use]
    pub fn arm(mut self, arm: impl Arm + 'static) -> Self {
        self.arms.push(Box::new(arm));
        self
    }

    /// Total number of cells the grid will evaluate.
    pub fn num_cells(&self) -> usize {
        self.points.len() * self.arms.len() * self.seeds.len()
    }
}

/// Mean / spread / sample-count summary of one (point, arm) across the seed draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Mean total energy over the feasible draws (`NaN` when `count == 0`).
    pub mean_energy_j: f64,
    /// Mean total completion time over the feasible draws (`NaN` when `count == 0`).
    pub mean_time_s: f64,
    /// Population standard deviation of the energy over the feasible draws.
    pub std_energy_j: f64,
    /// Population standard deviation of the completion time over the feasible draws.
    pub std_time_s: f64,
    /// Number of feasible draws behind the means.
    pub count: usize,
    /// Number of draws evaluated (feasible or not).
    pub attempts: usize,
}

impl Aggregate {
    /// Reduces the per-seed outputs of one (point, arm), in seed order.
    ///
    /// Defined as "push every sample into an [`AggregateAccumulator`] in seed order", so
    /// this materializing reduction and the streaming reduction are the *same* fold — one
    /// fed from a slice, one fed sample by sample — and therefore bit-identical by
    /// construction, regardless of which threads produced the samples.
    pub fn from_samples(samples: &[Option<CellOutput>]) -> Self {
        let mut acc = AggregateAccumulator::new();
        for sample in samples {
            acc.push(*sample);
        }
        acc.finish()
    }
}

/// Constant-memory accumulator behind every [`Aggregate`]: one per (point, arm), fed the
/// per-seed outputs *in seed order*.
///
/// Means are running sums (`Σx / n`, folded left to right — the historical summation
/// order), standard deviations use Welford's online update. The fold is a pure function of
/// the sample sequence, so any reduction that feeds samples in seed order — the
/// materializing [`Aggregate::from_samples`] or the engine's streaming chunk merge —
/// produces bit-identical aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggregateAccumulator {
    attempts: usize,
    count: usize,
    sum_energy: f64,
    sum_time: f64,
    welford_mean_energy: f64,
    m2_energy: f64,
    welford_mean_time: f64,
    m2_time: f64,
}

impl AggregateAccumulator {
    /// A fresh accumulator (zero samples).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in the next seed's output (`None` = infeasible draw: counted, not averaged).
    pub fn push(&mut self, sample: Option<CellOutput>) {
        self.attempts += 1;
        if let Some(s) = sample {
            self.count += 1;
            let n = self.count as f64;
            self.sum_energy += s.energy_j;
            self.sum_time += s.time_s;
            let de = s.energy_j - self.welford_mean_energy;
            self.welford_mean_energy += de / n;
            self.m2_energy += de * (s.energy_j - self.welford_mean_energy);
            let dt = s.time_s - self.welford_mean_time;
            self.welford_mean_time += dt / n;
            self.m2_time += dt * (s.time_s - self.welford_mean_time);
        }
    }

    /// Folds a contiguous run of per-seed outputs into this accumulator, in slice order.
    ///
    /// This is the merge operation of the sharded fleet path: a shard ships the raw
    /// `Option<CellOutput>` samples of its seed sub-range (not its partial sums — float
    /// addition is not associative, so merging sums would *not* reproduce the
    /// single-process bits), and the coordinator replays each shard's slice into the
    /// per-(point, arm) accumulator in shard order. Because the shards partition the seed
    /// range in order, the replayed fold is literally the same sequence of
    /// [`AggregateAccumulator::push`] calls a single-process run performs — bit-identical
    /// by construction.
    pub fn merge_samples(&mut self, samples: &[Option<CellOutput>]) {
        for sample in samples {
            self.push(*sample);
        }
    }

    /// The aggregate of everything pushed so far.
    pub fn finish(&self) -> Aggregate {
        if self.count == 0 {
            return Aggregate {
                mean_energy_j: f64::NAN,
                mean_time_s: f64::NAN,
                std_energy_j: f64::NAN,
                std_time_s: f64::NAN,
                count: 0,
                attempts: self.attempts,
            };
        }
        let n = self.count as f64;
        Aggregate {
            mean_energy_j: self.sum_energy / n,
            mean_time_s: self.sum_time / n,
            std_energy_j: (self.m2_energy / n).sqrt(),
            std_time_s: (self.m2_time / n).sqrt(),
            count: self.count,
            attempts: self.attempts,
        }
    }
}

/// Work counters of one sweep: how many scenarios were actually built versus how many
/// cells were evaluated against them.
///
/// With scenario sharing on (the default) and arms that don't specialise their builder,
/// `scenarios_built == points × seeds` while `cells_evaluated == points × arms × seeds` —
/// the build cost is amortised across the arm count. Both counters are deterministic for a
/// successful sweep (independent of thread count); after an aborted sweep they reflect
/// only the work done before the abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepCounters {
    /// Number of `ScenarioBuilder::build` calls the sweep performed.
    pub scenarios_built: usize,
    /// Number of [`Arm::evaluate`] calls the sweep performed.
    pub cells_evaluated: usize,
    /// Solver-stack iteration totals (outer, Jong, KKT, `μ`-bisection, fast-path hits)
    /// summed over every cell — the evidence that warm starting saves iterations, not just
    /// wall clock. Deterministic for a successful sweep, independent of thread count.
    pub solver: SolveCounters,
}

impl SweepCounters {
    /// Folds another run's counters into this one. Every field is an exact integer sum,
    /// so merging per-shard counters in any order reproduces the single-process totals —
    /// the counter half of the fleet-merge bit-identity contract (the float half lives in
    /// [`AggregateAccumulator::merge_samples`]).
    pub fn merge(&mut self, other: &Self) {
        self.scenarios_built += other.scenarios_built;
        self.cells_evaluated += other.cells_evaluated;
        self.solver.add(&other.solver);
    }
}

/// The evaluated grid: one [`Aggregate`] per (point, arm).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The x value of every sweep point, in grid order.
    pub xs: Vec<f64>,
    /// The arm (column) names, in grid order.
    pub arm_names: Vec<String>,
    /// `aggregates[point_idx][arm_idx]`.
    pub aggregates: Vec<Vec<Aggregate>>,
    /// Scenario-build vs cell-evaluation counters of the run.
    pub counters: SweepCounters,
}

impl SweepResult {
    /// Builds a [`FigureReport`] from one metric of the aggregates, carrying the per-cell
    /// feasible-sample counts.
    pub fn report(
        &self,
        id: &str,
        title: &str,
        x_label: &str,
        y_label: &str,
        metric: impl Fn(&Aggregate) -> f64,
    ) -> FigureReport {
        let mut report = FigureReport::new(id, title, x_label, y_label, self.arm_names.clone());
        for (x, row) in self.xs.iter().zip(&self.aggregates) {
            report.push_row_with_counts(
                *x,
                row.iter().map(&metric).collect(),
                row.iter().map(|a| a.count).collect(),
            );
        }
        report
    }

    /// The mean-total-energy report.
    pub fn energy_report(&self, id: &str, title: &str, x_label: &str) -> FigureReport {
        self.report(id, title, x_label, "total energy (J)", |a| a.mean_energy_j)
    }

    /// The mean-total-completion-time report.
    pub fn time_report(&self, id: &str, title: &str, x_label: &str) -> FigureReport {
        self.report(id, title, x_label, "total time (s)", |a| a.mean_time_s)
    }
}

/// Environment variable read by [`SweepEngine::new`] to pin the default worker count
/// (positive integer; anything else is ignored). CI uses it to run the whole test suite
/// through both the sequential and the multi-worker scheduling path.
pub const THREADS_ENV: &str = "FEDOPT_SWEEP_THREADS";

/// Environment variable read by [`SweepEngine::new`] to set the default warm-start switch
/// (`1`/`true` enables, `0`/`false` disables; anything else is ignored and the default —
/// **on**, the warm continuation — applies). `FEDOPT_WARM_START=0` is the escape hatch
/// back to the bit-exact cold reference path. CI runs the whole test suite with the warm
/// continuation both on and off; tests that pin bit-exact reference outputs force
/// [`SweepEngine::with_warm_start`]`(false)` explicitly.
pub const WARM_START_ENV: &str = "FEDOPT_WARM_START";

/// Default number of seeds per streaming chunk (see [`SweepEngine::with_seed_chunk`]).
pub const DEFAULT_SEED_CHUNK: usize = 64;

/// The [`WARM_START_ENV`] setting, if the environment states one explicitly: `Some(true)`
/// / `Some(false)` for a recognised value, `None` when unset or unparseable.
///
/// [`SweepEngine::new`] folds this into its default; the spec layer consults it directly
/// because an explicit environment setting outranks a spec's own `warm_start` default
/// (`FEDOPT_WARM_START=0` must force any sweep cold).
pub fn warm_start_env() -> Option<bool> {
    std::env::var(WARM_START_ENV).ok().and_then(|v| match v.trim() {
        "1" | "true" | "TRUE" | "True" => Some(true),
        "0" | "false" | "FALSE" | "False" => Some(false),
        _ => None,
    })
}

/// Evaluates [`SweepGrid`]s in parallel with deterministic output.
#[derive(Debug, Clone, Copy)]
pub struct SweepEngine {
    threads: NonZeroUsize,
    share_scenarios: bool,
    streaming: bool,
    seed_chunk: NonZeroUsize,
    warm_start: bool,
    superlinear_mu: bool,
    adaptive_mu_bracket: bool,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// An engine using all available CPU parallelism (or the [`THREADS_ENV`] override) and
    /// the [`WARM_START_ENV`] default for the warm-start switch.
    pub fn new() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .and_then(NonZeroUsize::new)
            .unwrap_or_else(|| std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN));
        let warm_start = warm_start_env().unwrap_or(true);
        Self {
            threads,
            share_scenarios: true,
            streaming: true,
            seed_chunk: NonZeroUsize::new(DEFAULT_SEED_CHUNK).expect("nonzero"),
            warm_start,
            superlinear_mu: true,
            adaptive_mu_bracket: true,
        }
    }

    /// An engine with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is nonzero"),
            ..Self::new()
        }
    }

    /// A sequential engine — useful as the reference in determinism tests.
    pub fn single_thread() -> Self {
        Self::with_threads(1)
    }

    /// Enables or disables sharing one scenario build across the arms of a (point, seed)
    /// cell-group (default: enabled). Disabling rebuilds the scenario for every cell — the
    /// historical behaviour, kept selectable as the reference for the bit-identity
    /// regression test and the `scenario_cache` bench.
    #[must_use]
    pub fn with_scenario_sharing(mut self, share: bool) -> Self {
        self.share_scenarios = share;
        self
    }

    /// Whether this engine shares scenario builds across the arms of a cell-group.
    pub fn shares_scenarios(&self) -> bool {
        self.share_scenarios
    }

    /// Enables or disables the warm-start continuation for every arm of the sweep
    /// (default: the [`WARM_START_ENV`] setting, off when unset). With warm start on, the
    /// solver carries Jong multipliers, `μ`-bisection brackets and rate floors between the
    /// outer iterations of each solve **and** across the arms of one (point, seed,
    /// scenario) cell-group — in the grid's fixed arm order, reset at every group boundary,
    /// so the output is still bit-identical across thread counts (just not bit-identical to
    /// the cold path: warm solves converge to the same fixed point within the solver
    /// tolerances along a cheaper trajectory). `with_warm_start(false)` is the bit-exact
    /// cold reference path regardless of the arms' own configs.
    #[must_use]
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Whether this engine runs sweeps with the warm-start continuation.
    pub fn warm_starts(&self) -> bool {
        self.warm_start
    }

    /// Enables or disables the superlinear (Brent) `μ`-root step for every arm of the
    /// sweep (default: enabled). `with_superlinear_mu(false)` is the legacy pure-bisection
    /// reference path — kept selectable so the historical goldens remain reproducible
    /// bit for bit (see `SolverConfig::superlinear_mu`).
    #[must_use]
    pub fn with_superlinear_mu(mut self, superlinear_mu: bool) -> Self {
        self.superlinear_mu = superlinear_mu;
        self
    }

    /// Whether this engine runs sweeps with the superlinear (Brent) `μ`-root step.
    pub fn superlinear_mu(&self) -> bool {
        self.superlinear_mu
    }

    /// Enables or disables the adaptive warm `μ`-bracket width for every arm of the sweep
    /// (default: enabled). With it on, each worker's KKT scratch remembers how far the
    /// `μ`-root moved in its previous solve and opens the next warm bracket that tight —
    /// near-stationary arms of a cell-group then resolve `μ` in a handful of `g'(μ)`
    /// evaluations. `with_adaptive_mu_bracket(false)` restores the fixed-width warm
    /// bracket bit for bit (see `SolverConfig::adaptive_mu_bracket`); either way the cold
    /// path (`with_warm_start(false)`) never reads the carried width.
    #[must_use]
    pub fn with_adaptive_mu_bracket(mut self, adaptive_mu_bracket: bool) -> Self {
        self.adaptive_mu_bracket = adaptive_mu_bracket;
        self
    }

    /// Whether this engine runs sweeps with the adaptive warm `μ`-bracket width.
    pub fn adaptive_mu_bracket(&self) -> bool {
        self.adaptive_mu_bracket
    }

    /// Enables or disables the streaming reduction (default: enabled). With streaming the
    /// engine holds one [`AggregateAccumulator`] per (point, arm) — `O(points × arms)`
    /// memory — plus a bounded window of in-flight seed chunks, instead of materialising
    /// every cell output (`O(points × arms × seeds)`). Disabling restores the materializing
    /// path, kept selectable as the reference for the bit-identity regression test.
    #[must_use]
    pub fn with_streaming_reduction(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Whether this engine reduces cell outputs with the streaming accumulators.
    pub fn streams_reduction(&self) -> bool {
        self.streaming
    }

    /// Sets the *maximum* number of seeds per streaming chunk (clamped to at least 1;
    /// default [`DEFAULT_SEED_CHUNK`]). A chunk of one point's seeds is the streaming unit
    /// of parallel work; larger chunks amortise reduction overhead on 10⁴-draw grids,
    /// while the engine automatically shrinks chunks below this cap when a grid would
    /// otherwise yield too few work items to keep every worker busy (a few-point,
    /// 100-seed paper grid on a many-core host). Output is bit-identical for every chunk
    /// size — chunks are folded in order, seeds in order within each chunk.
    #[must_use]
    pub fn with_seed_chunk(mut self, seeds_per_chunk: usize) -> Self {
        self.seed_chunk = NonZeroUsize::new(seeds_per_chunk.max(1)).expect("max(1) is nonzero");
        self
    }

    /// The maximum number of seeds per streaming chunk (see
    /// [`SweepEngine::with_seed_chunk`]).
    pub fn seed_chunk(&self) -> usize {
        self.seed_chunk.get()
    }

    /// The effective seeds-per-chunk for a grid: the configured cap, shrunk (never grown)
    /// until the grid yields at least ~4 work items per worker, so streaming never
    /// schedules coarser than the worker pool can use. At the floor of 1 seed per chunk
    /// the granularity equals the materializing path's per-(point, seed) cell-groups.
    fn effective_seed_chunk(&self, n_points: usize, n_seeds: usize) -> usize {
        let mut chunk = self.seed_chunk.get();
        if n_points == 0 || n_seeds == 0 {
            return chunk;
        }
        let target_items = self.threads() * 4;
        if n_points * n_seeds.div_ceil(chunk) < target_items {
            let chunks_per_point = target_items.div_ceil(n_points);
            chunk = (n_seeds / chunks_per_point).max(1);
        }
        chunk
    }

    /// The worker count this engine will use.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Evaluates every cell of the grid and reduces the per-(point, arm) aggregates.
    ///
    /// The unit of parallel work is a (point, seed) cell-group (or, with the default
    /// streaming reduction, a chunk of one point's seeds): the scenario is built once per
    /// set of arms whose prepared builders compare equal, and every arm of the set
    /// evaluates against the shared build by reference. Samples are reduced per
    /// (point, arm) *in seed order* whatever the thread count or reduction mode, so the
    /// result is bit-identical across all of them.
    ///
    /// # Errors
    ///
    /// A hard cell error aborts the sweep: workers stop picking up new work as soon as one
    /// cell fails, and in-flight groups abandon their remaining cells at the next cell
    /// boundary (the cell being solved still finishes), so a deterministic early failure
    /// does not burn through the rest of an expensive grid. The error surfaced is the
    /// failing cell with the lowest `(point, arm, seed)` slot index among those evaluated —
    /// with one thread the work runs in order, so that is the first error the run hit; with
    /// more, scheduling decides which failing cells were reached first. Infeasible cells
    /// (`Ok(None)`) are not errors.
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepResult, CoreError> {
        let (builders, groups) = self.prepare_groups(grid);
        if self.streaming {
            self.run_streaming(grid, &builders, &groups)
        } else {
            self.run_materializing(grid, &builders, &groups)
        }
    }

    /// Evaluates every cell of the grid and returns the **raw** per-cell outputs in
    /// `(point, arm, seed)` slot order, without reducing them to aggregates.
    ///
    /// This is the worker half of the sharded fleet path ([`crate::shard`]): a shard runs
    /// `run_cells` on its seed sub-range and ships the samples, and the coordinator
    /// replays them through [`AggregateAccumulator::merge_samples`] in shard order —
    /// reproducing the single-process [`SweepEngine::run`] reduction bit for bit. The
    /// evaluation itself is the materializing scheduler, so every determinism property of
    /// [`SweepEngine::run`] (bit-identical across thread counts, seed-order reduction
    /// keys) carries over unchanged; memory is `O(points × arms × seeds)` samples, which
    /// is exactly the payload a shard has to ship anyway.
    ///
    /// # Errors
    ///
    /// Same contract as [`SweepEngine::run`].
    pub fn run_cells(&self, grid: &SweepGrid) -> Result<CellMatrix, CoreError> {
        self.run_cells_with_progress(grid, None)
    }

    /// [`SweepEngine::run_cells`] with a live progress observer: `progress` (when given)
    /// is incremented once per evaluated cell, from whichever worker thread evaluated it.
    /// The fleet worker's heartbeat thread reads it to report cells-completed progress on
    /// stderr while the sweep is still running — the counter is observational only and
    /// never influences scheduling or results.
    ///
    /// # Errors
    ///
    /// Same contract as [`SweepEngine::run`].
    pub fn run_cells_with_progress(
        &self,
        grid: &SweepGrid,
        progress: Option<&AtomicUsize>,
    ) -> Result<CellMatrix, CoreError> {
        let (builders, groups) = self.prepare_groups(grid);
        let (samples, counters) = self.materialize_cells(grid, &builders, &groups, progress)?;
        Ok(CellMatrix {
            xs: grid.points.iter().map(|p| p.x).collect(),
            arm_names: grid.arms.iter().map(|a| a.name()).collect(),
            n_seeds: grid.seeds.len(),
            samples,
            counters,
        })
    }

    /// Specialises the grid's builders once per (point, arm) and groups each point's arms
    /// by identical prepared builder — the shared preamble of every evaluation path. Every
    /// group shares one scenario build per seed; with sharing disabled, every arm is its
    /// own group.
    #[allow(clippy::type_complexity)]
    fn prepare_groups(
        &self,
        grid: &SweepGrid,
    ) -> (Vec<Vec<ScenarioBuilder>>, Vec<Vec<Vec<usize>>>) {
        // Builders are pure data; specialise them once per (point, arm) up front.
        let builders: Vec<Vec<ScenarioBuilder>> = grid
            .points
            .iter()
            .map(|p| grid.arms.iter().map(|a| a.prepare(&p.builder)).collect())
            .collect();

        let groups: Vec<Vec<Vec<usize>>> = builders
            .iter()
            .map(|point_builders| {
                let mut point_groups: Vec<Vec<usize>> = Vec::new();
                for (arm_idx, builder) in point_builders.iter().enumerate() {
                    if self.share_scenarios {
                        if let Some(group) = point_groups
                            .iter_mut()
                            .find(|group| &point_builders[group[0]] == builder)
                        {
                            group.push(arm_idx);
                            continue;
                        }
                    }
                    point_groups.push(vec![arm_idx]);
                }
                point_groups
            })
            .collect();
        (builders, groups)
    }

    /// The streaming evaluation-and-reduction path (the default): work items are chunks of
    /// one point's seeds, folded into per-(point, arm) [`AggregateAccumulator`]s in strict
    /// item order by a bounded-window [`StreamReducer`]. Peak memory is
    /// `O(points × arms)` accumulators plus `O(window × arms × seed_chunk)` pending cell
    /// outputs (window ≈ 4 × workers) — independent of the seed count, which is what makes
    /// `--seeds 10000` grids feasible.
    fn run_streaming(
        &self,
        grid: &SweepGrid,
        builders: &[Vec<ScenarioBuilder>],
        groups: &[Vec<Vec<usize>>],
    ) -> Result<SweepResult, CoreError> {
        let n_points = grid.points.len();
        let n_arms = grid.arms.len();
        let n_seeds = grid.seeds.len();
        let chunk = self.effective_seed_chunk(n_points, n_seeds);
        let n_chunks = n_seeds.div_ceil(chunk);
        let n_items = n_points * n_chunks;
        let workers = self.threads().min(n_items).max(1);
        let window = streaming_window(workers);

        let failed = AtomicBool::new(false);
        let scenarios_built = AtomicUsize::new(0);
        let cells_evaluated = AtomicUsize::new(0);
        let solver_totals = Mutex::new(SolveCounters::default());
        let reducer = StreamReducer::new(n_points, n_arms, n_chunks, chunk, n_seeds, window);
        let evaluator = GroupEvaluator {
            grid,
            builders,
            groups,
            failed: &failed,
            scenarios_built: &scenarios_built,
            cells_evaluated: &cells_evaluated,
            warm_start: self.warm_start,
            superlinear_mu: self.superlinear_mu,
            adaptive_mu_bracket: self.adaptive_mu_bracket,
            solver_totals: &solver_totals,
            progress: None,
        };

        // The (point, arm, seed) slot index of a cell — the same error-ordering key the
        // materializing path uses.
        let slot_of = |point: usize, arm: usize, seed_idx: usize| -> usize {
            (point * n_arms + arm) * n_seeds + seed_idx
        };

        let worker_loop = || {
            let mut ws = SolverWorkspace::new();
            let mut buf: Vec<Option<CellOutput>> = Vec::new();
            while let Some(item) = reducer.claim() {
                // A claimed item that is neither deposited nor aborted would pin the fold
                // frontier and leave peers blocked in `claim` forever. The only way to exit
                // this block without reaching the deposit/abort decision below is a panic
                // mid-cell — the guard's Drop then poisons the reducer so every peer drains
                // and the panic propagates through the scope join instead of deadlocking.
                let mut guard = ClaimGuard { reducer: &reducer, armed: true };
                let point_idx = item / n_chunks;
                let chunk_idx = item % n_chunks;
                let seed_lo = chunk_idx * chunk;
                let seed_hi = (seed_lo + chunk).min(n_seeds);
                let clen = seed_hi - seed_lo;
                buf.clear();
                buf.resize(n_arms * clen, None);

                let mut error: Option<(usize, CoreError)> = None;
                'seeds: for (si, &seed) in grid.seeds[seed_lo..seed_hi].iter().enumerate() {
                    let outcome = evaluator.evaluate(point_idx, seed, &mut ws, &mut |arm, s| {
                        buf[arm * clen + si] = s;
                    });
                    match outcome {
                        GroupOutcome::Complete => {}
                        GroupOutcome::Abandoned => break 'seeds,
                        GroupOutcome::Failed(arm_idx, e) => {
                            error = Some((slot_of(point_idx, arm_idx, seed_lo + si), e));
                            break 'seeds;
                        }
                    }
                }
                guard.armed = false;

                if let Some((slot, e)) = error {
                    reducer.abort(slot, e);
                } else if !failed.load(Ordering::Relaxed) {
                    reducer.deposit(item, &mut buf);
                }
                // A chunk abandoned because *another* worker failed is simply not
                // deposited; the reducer is already aborted (or about to be) and the
                // partial results are discarded with the whole run.
            }
        };

        if workers == 1 {
            worker_loop();
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker_loop)).collect();
                for h in handles {
                    h.join().expect("sweep worker panicked");
                }
            });
        }

        let (accumulators, error, _peak_pending) = reducer.into_parts();
        if let Some((_, e)) = error {
            return Err(e);
        }
        let aggregates: Vec<Vec<Aggregate>> = (0..n_points)
            .map(|p| (0..n_arms).map(|a| accumulators[p * n_arms + a].finish()).collect())
            .collect();

        Ok(SweepResult {
            xs: grid.points.iter().map(|p| p.x).collect(),
            arm_names: grid.arms.iter().map(|a| a.name()).collect(),
            aggregates,
            counters: SweepCounters {
                scenarios_built: scenarios_built.into_inner(),
                cells_evaluated: cells_evaluated.into_inner(),
                solver: solver_totals.into_inner().expect("counter totals poisoned"),
            },
        })
    }

    /// The historical materialize-then-reduce path (`with_streaming_reduction(false)`):
    /// every cell output is slotted into a `(point, arm, seed)`-indexed vector before the
    /// per-(point, arm) reduction. `O(points × arms × seeds)` memory; kept as the
    /// regression reference for the streaming path.
    fn run_materializing(
        &self,
        grid: &SweepGrid,
        builders: &[Vec<ScenarioBuilder>],
        groups: &[Vec<Vec<usize>>],
    ) -> Result<SweepResult, CoreError> {
        let n_points = grid.points.len();
        let n_arms = grid.arms.len();
        let n_seeds = grid.seeds.len();
        let (samples, counters) = self.materialize_cells(grid, builders, groups, None)?;

        let aggregates: Vec<Vec<Aggregate>> = (0..n_points)
            .map(|p| {
                (0..n_arms)
                    .map(|a| {
                        let base = (p * n_arms + a) * n_seeds;
                        Aggregate::from_samples(&samples[base..base + n_seeds])
                    })
                    .collect()
            })
            .collect();

        Ok(SweepResult {
            xs: grid.points.iter().map(|p| p.x).collect(),
            arm_names: grid.arms.iter().map(|a| a.name()).collect(),
            aggregates,
            counters,
        })
    }

    /// Evaluates every cell and materialises the raw outputs in `(point, arm, seed)` slot
    /// order, together with the run's counters — the shared body of
    /// [`SweepEngine::run_cells`] and the materializing reduction.
    fn materialize_cells(
        &self,
        grid: &SweepGrid,
        builders: &[Vec<ScenarioBuilder>],
        groups: &[Vec<Vec<usize>>],
        progress: Option<&AtomicUsize>,
    ) -> Result<(Vec<Option<CellOutput>>, SweepCounters), CoreError> {
        let n_points = grid.points.len();
        let n_arms = grid.arms.len();
        let n_seeds = grid.seeds.len();

        enum Cell {
            Computed(Option<CellOutput>),
            Failed(CoreError),
            /// Not evaluated because some cell (of this group or an earlier one) failed.
            Skipped,
        }

        let failed = AtomicBool::new(false);
        let scenarios_built = AtomicUsize::new(0);
        let cells_evaluated = AtomicUsize::new(0);
        let solver_totals = Mutex::new(SolveCounters::default());
        let evaluator = GroupEvaluator {
            grid,
            builders,
            groups,
            failed: &failed,
            scenarios_built: &scenarios_built,
            cells_evaluated: &cells_evaluated,
            warm_start: self.warm_start,
            superlinear_mu: self.superlinear_mu,
            adaptive_mu_bracket: self.adaptive_mu_bracket,
            solver_totals: &solver_totals,
            progress,
        };
        // One cell-group = all arms of one (point, seed); returns one Cell per arm.
        let evaluate_group = |ws: &mut SolverWorkspace, item: usize| -> Vec<Cell> {
            let mut cells: Vec<Cell> = (0..n_arms).map(|_| Cell::Skipped).collect();
            let point_idx = item / n_seeds;
            let seed = grid.seeds[item % n_seeds];
            let outcome = evaluator.evaluate(point_idx, seed, ws, &mut |arm, sample| {
                cells[arm] = Cell::Computed(sample);
            });
            if let GroupOutcome::Failed(arm_idx, e) = outcome {
                cells[arm_idx] = Cell::Failed(e);
            }
            cells
        };

        let mut group_outputs = par_map_indexed_with(
            n_points * n_seeds,
            self.threads(),
            SolverWorkspace::new,
            evaluate_group,
        );

        // Re-slot the (point, seed)-major group outputs into (point, arm, seed) order and
        // surface the lowest-slot-indexed error among the evaluated cells.
        let mut samples: Vec<Option<CellOutput>> = Vec::with_capacity(grid.num_cells());
        let mut first_error: Option<CoreError> = None;
        let mut skipped = 0usize;
        // The read below transposes (item, arm) into (point, arm, seed) slot order, so
        // index arithmetic is clearer than nested iterators here.
        #[allow(clippy::needless_range_loop)]
        for p in 0..n_points {
            for a in 0..n_arms {
                for s in 0..n_seeds {
                    let cell =
                        std::mem::replace(&mut group_outputs[p * n_seeds + s][a], Cell::Skipped);
                    match cell {
                        Cell::Computed(sample) => samples.push(sample),
                        Cell::Failed(e) => {
                            if first_error.is_none() {
                                first_error = Some(e);
                            }
                        }
                        Cell::Skipped => skipped += 1,
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        debug_assert_eq!(skipped, 0, "skips must imply a surfaced failure");
        debug_assert_eq!(samples.len(), grid.num_cells());

        let counters = SweepCounters {
            scenarios_built: scenarios_built.into_inner(),
            cells_evaluated: cells_evaluated.into_inner(),
            solver: solver_totals.into_inner().expect("counter totals poisoned"),
        };
        Ok((samples, counters))
    }
}

/// The raw output of [`SweepEngine::run_cells`]: every cell's `Option<CellOutput>` in
/// `(point, arm, seed)` slot order, plus the run's counters — the unreduced form a shard
/// ships to the fleet coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMatrix {
    /// The x value of every sweep point, in grid order.
    pub xs: Vec<f64>,
    /// The arm (column) names, in grid order.
    pub arm_names: Vec<String>,
    /// Number of seeds per (point, arm) — the innermost slot dimension.
    pub n_seeds: usize,
    /// `samples[(point_idx * arms + arm_idx) * n_seeds + seed_idx]`; `None` = infeasible
    /// draw (counted in the aggregate's `attempts`, not averaged).
    pub samples: Vec<Option<CellOutput>>,
    /// Scenario-build vs cell-evaluation counters of the run.
    pub counters: SweepCounters,
}

impl CellMatrix {
    /// The sample slice of one (point, arm) — `n_seeds` entries in seed order.
    pub fn cell_slice(&self, point_idx: usize, arm_idx: usize) -> &[Option<CellOutput>] {
        let base = (point_idx * self.arm_names.len() + arm_idx) * self.n_seeds;
        &self.samples[base..base + self.n_seeds]
    }

    /// Reduces this matrix to the [`SweepResult`] a plain [`SweepEngine::run`] would have
    /// produced — the degenerate single-shard merge.
    pub fn into_sweep_result(self) -> SweepResult {
        let n_arms = self.arm_names.len();
        let aggregates: Vec<Vec<Aggregate>> = (0..self.xs.len())
            .map(|p| (0..n_arms).map(|a| Aggregate::from_samples(self.cell_slice(p, a))).collect())
            .collect();
        SweepResult { xs: self.xs, arm_names: self.arm_names, aggregates, counters: self.counters }
    }
}

/// The shared per-sweep evaluation context of both reduction paths: the grid, the
/// prepared builders and their arm-groups, the abort flag, and the work counters. Keeping
/// the build-group-evaluate body (and its failed-flag boundaries and error attribution)
/// in exactly one place is what makes the materializing path a meaningful regression
/// reference for the streaming path.
struct GroupEvaluator<'a> {
    grid: &'a SweepGrid,
    builders: &'a [Vec<ScenarioBuilder>],
    groups: &'a [Vec<Vec<usize>>],
    failed: &'a AtomicBool,
    scenarios_built: &'a AtomicUsize,
    cells_evaluated: &'a AtomicUsize,
    /// Engine-level warm-start switch, handed to every cell via [`CellContext`].
    warm_start: bool,
    /// Engine-level superlinear `μ`-root switch, handed to every cell via [`CellContext`].
    superlinear_mu: bool,
    /// Engine-level adaptive warm `μ`-bracket switch, handed to every cell via
    /// [`CellContext`].
    adaptive_mu_bracket: bool,
    /// Per-sweep solver-iteration totals (folded once per cell-group; integer sums, so
    /// thread count and fold order cannot change the result).
    solver_totals: &'a Mutex<SolveCounters>,
    /// Optional live cells-completed observer (see
    /// [`SweepEngine::run_cells_with_progress`]); bumped alongside `cells_evaluated`.
    progress: Option<&'a AtomicUsize>,
}

/// How one (point, seed) cell-group evaluation ended.
enum GroupOutcome {
    /// Every cell of the group was delivered to the sink.
    Complete,
    /// Another worker failed the sweep; the group abandoned its remaining cells at a
    /// build/cell boundary (output is discarded with the whole run).
    Abandoned,
    /// This group hit a hard error on the given arm (the shared `failed` flag is set).
    Failed(usize, CoreError),
}

impl GroupEvaluator<'_> {
    /// Evaluates every arm of one (point, seed) cell-group, building each distinct
    /// prepared scenario once and delivering each computed cell to
    /// `sink(arm_idx, sample)`. Folds the group's solver-iteration counts into the
    /// per-sweep totals on every exit path.
    fn evaluate(
        &self,
        point_idx: usize,
        seed: u64,
        ws: &mut SolverWorkspace,
        sink: &mut dyn FnMut(usize, Option<CellOutput>),
    ) -> GroupOutcome {
        let counters_before = ws.counters;
        let outcome = self.evaluate_cells(point_idx, seed, ws, sink);
        let delta = ws.counters.since(&counters_before);
        if delta != SolveCounters::default() {
            self.solver_totals.lock().expect("counter totals poisoned").add(&delta);
        }
        outcome
    }

    fn evaluate_cells(
        &self,
        point_idx: usize,
        seed: u64,
        ws: &mut SolverWorkspace,
        sink: &mut dyn FnMut(usize, Option<CellOutput>),
    ) -> GroupOutcome {
        for group in &self.groups[point_idx] {
            // A build is the expensive step worth skipping once some other worker has
            // already failed the sweep.
            if self.failed.load(Ordering::Relaxed) {
                return GroupOutcome::Abandoned;
            }
            let scenario = match self.builders[point_idx][group[0]].build(seed) {
                Ok(scenario) => {
                    self.scenarios_built.fetch_add(1, Ordering::Relaxed);
                    scenario
                }
                Err(e) => {
                    self.failed.store(true, Ordering::Relaxed);
                    return GroupOutcome::Failed(group[0], CoreError::from(e));
                }
            };
            // Warm-start state must never leak across scenario groups: each group's output
            // has to be a pure function of the group's own cells (in fixed arm order), or
            // determinism across thread counts — which decide who solved what before —
            // would be lost. Within the group, the arms deliberately seed each other.
            ws.reset_warm_start();
            for &arm_idx in group {
                // Another worker may have failed while this group was mid-flight: abandon
                // the remaining (expensive) cells at the next cell boundary rather than
                // draining the whole group.
                if self.failed.load(Ordering::Relaxed) {
                    return GroupOutcome::Abandoned;
                }
                let mut ctx = CellContext {
                    x: self.grid.points[point_idx].x,
                    seed,
                    stream_seed: baselines::derive_stream_seed(seed),
                    point_idx,
                    arm_idx,
                    warm_start: self.warm_start,
                    superlinear_mu: self.superlinear_mu,
                    adaptive_mu_bracket: self.adaptive_mu_bracket,
                    outer_continuation: false,
                    workspace: &mut *ws,
                };
                self.cells_evaluated.fetch_add(1, Ordering::Relaxed);
                if let Some(progress) = self.progress {
                    progress.fetch_add(1, Ordering::Relaxed);
                }
                match self.grid.arms[arm_idx].evaluate(&scenario, &mut ctx) {
                    Ok(sample) => sink(arm_idx, sample),
                    Err(e) => {
                        self.failed.store(true, Ordering::Relaxed);
                        return GroupOutcome::Failed(arm_idx, e);
                    }
                }
            }
        }
        GroupOutcome::Complete
    }
}

/// The streaming reducer's window: how many chunk items may be in flight or deposited but
/// not yet folded. Bounds the reducer's pending memory to `window × arms × seed_chunk`
/// cell outputs while leaving every worker a few items of slack.
fn streaming_window(workers: usize) -> usize {
    (workers * 4).max(2)
}

/// Bounded-window, in-order chunk reducer of the streaming path.
///
/// Work items (`point × chunk-of-seeds`) are claimed in increasing index order but finish
/// in arbitrary order; deposits park in a `window`-sized ring until every earlier item has
/// been folded, then fold — chunks in item order, seeds in order within each chunk — into
/// the per-(point, arm) [`AggregateAccumulator`]s. [`StreamReducer::claim`] blocks while
/// the claimant would run more than `window` items ahead of the fold frontier, which is
/// what bounds the ring: at most `window` chunks of cell outputs ever exist at once,
/// however many seeds the grid has. The fold order makes the result bit-identical to the
/// materializing reduction (and independent of worker count) by construction.
struct StreamReducer {
    state: Mutex<ReduceState>,
    progressed: Condvar,
    n_items: usize,
    n_arms: usize,
    n_chunks: usize,
    seed_chunk: usize,
    n_seeds: usize,
    window: usize,
}

struct ReduceState {
    /// Next unclaimed work item.
    next_item: usize,
    /// First item not yet folded (the fold frontier).
    floor: usize,
    /// Ring flag per window slot: deposited and awaiting its turn to fold.
    deposited: Vec<bool>,
    /// Ring of parked chunk outputs (`arm`-major, seed order within each arm).
    ring: Vec<Vec<Option<CellOutput>>>,
    /// One accumulator per (point, arm) — the whole reduction state.
    accumulators: Vec<AggregateAccumulator>,
    /// Set on the first hard cell error; stops claims and folding.
    aborted: bool,
    /// The lowest-slot error observed, surfaced as the sweep's result.
    error: Option<(usize, CoreError)>,
    /// High-water mark of deposited-but-unfolded chunks (bounded by `window`).
    peak_pending: usize,
    pending: usize,
}

/// Unwind guard of one claimed streaming work item: if the worker panics between claiming
/// and the deposit/abort decision, the Drop poisons the reducer so blocked peers drain
/// instead of waiting on a fold frontier that can never advance (the panic itself then
/// surfaces through the scope join).
struct ClaimGuard<'a> {
    reducer: &'a StreamReducer,
    armed: bool,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.reducer.poison();
        }
    }
}

impl StreamReducer {
    fn new(
        n_points: usize,
        n_arms: usize,
        n_chunks: usize,
        seed_chunk: usize,
        n_seeds: usize,
        window: usize,
    ) -> Self {
        Self {
            state: Mutex::new(ReduceState {
                next_item: 0,
                floor: 0,
                deposited: vec![false; window],
                ring: (0..window).map(|_| Vec::new()).collect(),
                accumulators: vec![AggregateAccumulator::new(); n_points * n_arms],
                aborted: false,
                error: None,
                peak_pending: 0,
                pending: 0,
            }),
            progressed: Condvar::new(),
            n_items: n_points * n_chunks,
            n_arms,
            n_chunks,
            seed_chunk,
            n_seeds,
            window,
        }
    }

    /// Claims the next work item, blocking while the claim would run more than `window`
    /// items ahead of the fold frontier. Returns `None` when the grid is drained or the
    /// sweep aborted.
    fn claim(&self) -> Option<usize> {
        let mut st = self.state.lock().expect("reducer poisoned");
        loop {
            if st.aborted || st.next_item >= self.n_items {
                return None;
            }
            if st.next_item < st.floor + self.window {
                let item = st.next_item;
                st.next_item += 1;
                return Some(item);
            }
            st = self.progressed.wait(st).expect("reducer poisoned");
        }
    }

    /// Records a hard cell error (keeping the lowest slot index) and aborts the sweep.
    fn abort(&self, slot: usize, error: CoreError) {
        let mut st = self.state.lock().expect("reducer poisoned");
        if st.error.as_ref().map_or(true, |(s, _)| slot < *s) {
            st.error = Some((slot, error));
        }
        st.aborted = true;
        self.progressed.notify_all();
    }

    /// Aborts the sweep without recording an error — called by a panicking worker's
    /// [`ClaimGuard`] so peers blocked in [`StreamReducer::claim`] wake up and drain.
    /// Tolerates a poisoned mutex (the panic may have happened while holding the lock, in
    /// which case every peer's own lock attempt already unblocks them by panicking).
    fn poison(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.aborted = true;
        }
        self.progressed.notify_all();
    }

    /// Deposits a completed chunk (swapping the caller's buffer into the ring so both
    /// sides reuse their allocations) and folds every consecutive ready chunk from the
    /// frontier.
    fn deposit(&self, item: usize, buf: &mut Vec<Option<CellOutput>>) {
        let mut st = self.state.lock().expect("reducer poisoned");
        if st.aborted {
            return;
        }
        let slot = item % self.window;
        debug_assert!(!st.deposited[slot], "window slot collision");
        std::mem::swap(&mut st.ring[slot], buf);
        st.deposited[slot] = true;
        st.pending += 1;
        st.peak_pending = st.peak_pending.max(st.pending);
        debug_assert!(st.pending <= self.window, "pending chunks exceeded the window");

        while st.floor < st.next_item && st.deposited[st.floor % self.window] {
            let fold_slot = st.floor % self.window;
            st.deposited[fold_slot] = false;
            st.pending -= 1;
            let cells = std::mem::take(&mut st.ring[fold_slot]);
            let point_idx = st.floor / self.n_chunks;
            let chunk_idx = st.floor % self.n_chunks;
            let seed_lo = chunk_idx * self.seed_chunk;
            let clen = (seed_lo + self.seed_chunk).min(self.n_seeds) - seed_lo;
            debug_assert_eq!(cells.len(), self.n_arms * clen);
            for arm in 0..self.n_arms {
                let acc = &mut st.accumulators[point_idx * self.n_arms + arm];
                for sample in &cells[arm * clen..(arm + 1) * clen] {
                    acc.push(*sample);
                }
            }
            st.ring[fold_slot] = cells;
            st.floor += 1;
        }
        self.progressed.notify_all();
    }

    /// Consumes the reducer: `(accumulators, error, peak_pending)`.
    fn into_parts(self) -> (Vec<AggregateAccumulator>, Option<(usize, CoreError)>, usize) {
        let st = self.state.into_inner().expect("reducer poisoned");
        (st.accumulators, st.error, st.peak_pending)
    }
}

/// Maps `f` over `0..n` using up to `threads` scoped workers and returns the outputs in
/// index order.
///
/// Stateless convenience wrapper over [`par_map_indexed_with`].
pub fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_with(n, threads, || (), |_, idx| f(idx))
}

/// Maps `f` over `0..n` using up to `threads` scoped workers, each owning one worker state
/// created by `init` (the engine's per-worker [`SolverWorkspace`]), and returns the outputs
/// in index order.
///
/// Work is distributed by an atomic cursor (dynamic scheduling — solver cells vary wildly
/// in cost), but each worker tags outputs with their index and the final vector is
/// assembled by index, so the result is identical to the sequential map *provided `f` is a
/// pure function of its index* — the worker state must be scratch, never carried signal
/// (which is exactly the [`SolverWorkspace`] contract). With one thread — or one item — no
/// worker threads are spawned at all and a single state serves the whole range.
pub fn par_map_indexed_with<S, T, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.min(n).max(1);
    if workers == 1 {
        let mut state = init();
        return (0..n).map(|idx| f(&mut state, idx)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let init = &init;
    let f = &f;
    let cursor = &cursor;
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        local.push((idx, f(&mut state, idx)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("sweep worker panicked")).collect()
    });
    tagged.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests_support {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Test arm that errors on one seed of the first point and counts evaluations.
    pub struct FailingArm {
        pub evaluated: Arc<AtomicUsize>,
        pub fail_seed: u64,
    }

    impl Arm for FailingArm {
        fn name(&self) -> String {
            "failing".to_string()
        }

        fn evaluate(
            &self,
            _scenario: &Scenario,
            ctx: &mut CellContext<'_>,
        ) -> Result<Option<CellOutput>, CoreError> {
            self.evaluated.fetch_add(1, Ordering::Relaxed);
            if ctx.point_idx == 0 && ctx.seed == self.fail_seed {
                return Err(CoreError::SolverFailure("injected".to_string()));
            }
            Ok(Some(CellOutput::new(1.0, 1.0)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arms::ProposedArm;
    use fedopt_core::SolverConfig;
    use flsys::Weights;

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let f = |i: usize| (i * 31) % 17;
        let expected: Vec<usize> = (0..100).map(f).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(par_map_indexed(100, threads, f), expected);
        }
        assert_eq!(par_map_indexed(0, 4, f), Vec::<usize>::new());
    }

    #[test]
    fn aggregate_of_no_feasible_samples_is_labelled_not_silent() {
        let agg = Aggregate::from_samples(&[None, None, None]);
        assert_eq!(agg.count, 0);
        assert_eq!(agg.attempts, 3);
        assert!(agg.mean_energy_j.is_nan());
        let some = Aggregate::from_samples(&[Some(CellOutput::new(2.0, 4.0)), None]);
        assert_eq!(some.count, 1);
        assert_eq!(some.attempts, 2);
        assert_eq!(some.mean_energy_j, 2.0);
        assert_eq!(some.mean_time_s, 4.0);
        assert_eq!(some.std_energy_j, 0.0);
    }

    #[test]
    fn aggregate_mean_and_std_are_correct() {
        let agg = Aggregate::from_samples(&[
            Some(CellOutput::new(1.0, 10.0)),
            Some(CellOutput::new(3.0, 30.0)),
        ]);
        assert_eq!(agg.mean_energy_j, 2.0);
        assert_eq!(agg.mean_time_s, 20.0);
        assert_eq!(agg.std_energy_j, 1.0);
        assert_eq!(agg.std_time_s, 10.0);
        assert_eq!(agg.count, 2);
    }

    #[test]
    fn first_error_aborts_the_sweep_instead_of_draining_the_grid() {
        use crate::engine::tests_support::FailingArm;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let evaluated = Arc::new(AtomicUsize::new(0));
        let builder = flsys::ScenarioBuilder::paper_default().with_devices(2);
        let mut grid = SweepGrid::new((1..=4).collect::<Vec<u64>>());
        for x in 0..6 {
            grid = grid.point(f64::from(x), builder.clone());
        }
        let grid = grid.arm(FailingArm { evaluated: Arc::clone(&evaluated), fail_seed: 2 });

        let err = SweepEngine::single_thread().run(&grid).unwrap_err();
        assert!(matches!(err, CoreError::SolverFailure(ref m) if m == "injected"), "{err:?}");
        // Sequentially the failure at cell 1 (point 0, seed 2) stops the sweep: seed 1
        // succeeded, seed 2 failed, and the remaining 22 cells were never evaluated.
        assert_eq!(evaluated.load(Ordering::Relaxed), 2);

        // A parallel run also aborts (in-flight cells may still finish, so only an upper
        // bound is deterministic) and surfaces the same error type.
        evaluated.store(0, Ordering::Relaxed);
        let err = SweepEngine::with_threads(4).run(&grid).unwrap_err();
        assert!(matches!(err, CoreError::SolverFailure(_)));
        assert!(evaluated.load(Ordering::Relaxed) <= grid.num_cells());
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking_the_streaming_reducer() {
        use std::sync::mpsc;
        use std::time::Duration;

        /// Arm that panics on one specific cell.
        struct PanickingArm;
        impl Arm for PanickingArm {
            fn name(&self) -> String {
                "panicking".to_string()
            }
            fn evaluate(
                &self,
                _scenario: &Scenario,
                ctx: &mut CellContext<'_>,
            ) -> Result<Option<CellOutput>, CoreError> {
                assert!(!(ctx.point_idx == 1 && ctx.seed == 2), "injected panic");
                Ok(Some(CellOutput::new(1.0, 1.0)))
            }
        }

        let builder = flsys::ScenarioBuilder::paper_default().with_devices(2);
        let mut grid = SweepGrid::new((0..6).collect::<Vec<u64>>());
        for x in 0..4 {
            grid = grid.point(f64::from(x), builder.clone());
        }
        let grid = grid.arm(PanickingArm);

        // Run the sweep on its own thread so a regression (a worker parking forever on the
        // fold frontier) fails this test by timeout instead of hanging the suite.
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Chunk size 1 so the panicked item genuinely pins the frontier for peers.
                SweepEngine::with_threads(4).with_seed_chunk(1).run(&grid)
            }));
            tx.send(result.is_err()).ok();
        });
        let panicked = rx
            .recv_timeout(Duration::from_secs(120))
            .expect("sweep deadlocked after a worker panic");
        assert!(panicked, "the injected panic must surface from the sweep");
    }

    #[test]
    fn scenario_builds_are_shared_per_prepared_builder_and_match_unshared() {
        use crate::arms::ConfiguredArm;

        let solver = SolverConfig::fast();
        let grid = || {
            let mut grid = SweepGrid::new(vec![1u64, 2, 3]);
            for x in [6.0, 12.0] {
                grid = grid.point(
                    x,
                    flsys::ScenarioBuilder::paper_default().with_devices(5).with_p_max_dbm(x),
                );
            }
            // Two arms with the default prepare share one build; the configured arm's
            // distinct builder gets its own.
            grid.arm(ProposedArm::new(Weights::balanced(), solver))
                .arm(ProposedArm::new(Weights::new(0.9, 0.1).unwrap(), solver))
                .arm(
                    ConfiguredArm::new(ProposedArm::new(Weights::balanced(), solver))
                        .named("N = 3")
                        .with_builder(|b| b.with_devices(3)),
                )
        };
        let (points, seeds, arms, distinct_builders) = (2, 3, 3, 2);

        // Pinned to the cold solver path: with warm start, arms of a shared cell-group
        // deliberately seed each other, so the unshared grouping (one group per arm, no
        // cross-arm carry) is a *different* — equally deterministic — warm trajectory.
        let engine = SweepEngine::single_thread().with_warm_start(false);
        let shared = engine.run(&grid()).unwrap();
        assert_eq!(shared.counters.scenarios_built, points * seeds * distinct_builders);
        assert_eq!(shared.counters.cells_evaluated, points * seeds * arms);

        let unshared = engine.with_scenario_sharing(false).run(&grid()).unwrap();
        assert_eq!(unshared.counters.scenarios_built, points * seeds * arms);
        assert_eq!(unshared.counters.cells_evaluated, points * seeds * arms);

        // Sharing must never change the numbers — only how often scenarios are rebuilt.
        assert_eq!(shared.aggregates, unshared.aggregates);
        assert_eq!(shared.xs, unshared.xs);
        assert_eq!(shared.arm_names, unshared.arm_names);
    }

    #[test]
    fn effective_seed_chunk_shrinks_to_feed_the_workers() {
        // A single worker keeps the configured cap — no need for finer scheduling.
        assert_eq!(SweepEngine::with_threads(1).effective_seed_chunk(4, 100), DEFAULT_SEED_CHUNK);
        // A paper-style grid (6 points × 100 seeds) on 16 workers must split finely enough
        // to yield ≥ 4 items per worker instead of 2 coarse chunks per point.
        let engine = SweepEngine::with_threads(16);
        let chunk = engine.effective_seed_chunk(6, 100);
        assert!(chunk >= 1);
        assert!(
            6 * 100usize.div_ceil(chunk) >= 16 * 4,
            "chunk {chunk} leaves the 16-worker pool starved"
        );
        // The cap only ever shrinks; tiny grids floor at one seed per chunk.
        assert_eq!(engine.effective_seed_chunk(2, 3), 1);
        assert_eq!(
            SweepEngine::with_threads(2).with_seed_chunk(5).effective_seed_chunk(100, 1000),
            5
        );
    }

    /// Streaming must hold exactly points×arms accumulators and a window-sized ring —
    /// never per-cell storage — and fold out-of-order deposits in item order.
    #[test]
    fn stream_reducer_is_bounded_and_folds_in_order() {
        let (points, arms, n_chunks, chunk, n_seeds) = (2usize, 3usize, 4usize, 2usize, 8usize);
        let window = 3;
        let reducer = StreamReducer::new(points, arms, n_chunks, chunk, n_seeds, window);
        {
            let st = reducer.state.lock().unwrap();
            assert_eq!(st.accumulators.len(), points * arms, "must be O(points×arms)");
            assert_eq!(st.ring.len(), window, "pending storage must be window-bounded");
        }

        // Claim everything the window allows; the next claim would have to block, so check
        // the guard condition instead of claiming from this single thread.
        let mut claimed = Vec::new();
        for _ in 0..window {
            claimed.push(reducer.claim().unwrap());
        }
        assert_eq!(claimed, vec![0, 1, 2]);
        {
            let st = reducer.state.lock().unwrap();
            assert!(st.next_item >= st.floor + window, "further claims must block");
        }

        // Deposit out of order: 2 and 1 park in the ring, 0 unlocks the in-order fold of
        // all three.
        let sample = |v: f64| Some(CellOutput::new(v, 10.0 * v));
        let chunk_cells = |base: f64| -> Vec<Option<CellOutput>> {
            // arm-major, 2 seeds per chunk: arm a gets (base + a·10), (base + a·10 + 1).
            (0..arms)
                .flat_map(|a| (0..chunk).map(move |s| sample(base + (a * 10 + s) as f64)))
                .collect()
        };
        reducer.deposit(2, &mut chunk_cells(200.0));
        reducer.deposit(1, &mut chunk_cells(100.0));
        {
            let st = reducer.state.lock().unwrap();
            assert_eq!(st.floor, 0, "nothing folds before item 0 lands");
            assert_eq!(st.pending, 2);
        }
        reducer.deposit(0, &mut chunk_cells(0.0));
        {
            let st = reducer.state.lock().unwrap();
            assert_eq!(st.floor, 3, "items 0..3 fold as one run");
            assert_eq!(st.pending, 0);
            assert!(st.peak_pending <= window);
        }

        // The folded accumulators must equal the sequential per-(point, arm) fold.
        let (accs, error, peak) = reducer.into_parts();
        assert!(error.is_none());
        assert!(peak <= window);
        // Point 0, arm 0 saw chunks 0,1,2 (seeds 0..6): samples base+0, base+1 per chunk.
        let expected = Aggregate::from_samples(&[
            sample(0.0),
            sample(1.0),
            sample(100.0),
            sample(101.0),
            sample(200.0),
            sample(201.0),
        ]);
        assert_eq!(accs[0].finish(), expected);
    }

    #[test]
    fn streaming_and_materializing_reductions_are_bit_identical() {
        let grid = || {
            let mut grid = SweepGrid::new((0..7).collect::<Vec<u64>>());
            for x in [6.0, 12.0] {
                grid = grid.point(
                    x,
                    flsys::ScenarioBuilder::paper_default().with_devices(4).with_p_max_dbm(x),
                );
            }
            grid.arm(ProposedArm::new(Weights::balanced(), SolverConfig::fast()))
        };
        let materialized =
            SweepEngine::with_threads(2).with_streaming_reduction(false).run(&grid()).unwrap();
        // Chunk sizes that divide, straddle and exceed the seed count, at 1 and 3 workers —
        // every combination must reproduce the materializing reduction bit for bit,
        // standard deviations included.
        for threads in [1usize, 3] {
            for chunk in [1usize, 2, 3, 7, 64] {
                let streamed = SweepEngine::with_threads(threads)
                    .with_streaming_reduction(true)
                    .with_seed_chunk(chunk)
                    .run(&grid())
                    .unwrap();
                assert_eq!(
                    streamed, materialized,
                    "streaming diverged at {threads} thread(s), chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn engine_is_deterministic_across_thread_counts() {
        let grid = |seeds: &[u64]| {
            SweepGrid::new(seeds)
                .point(
                    6.0,
                    flsys::ScenarioBuilder::paper_default().with_devices(5).with_p_max_dbm(6.0),
                )
                .point(
                    12.0,
                    flsys::ScenarioBuilder::paper_default().with_devices(5).with_p_max_dbm(12.0),
                )
                .arm(ProposedArm::new(Weights::balanced(), SolverConfig::fast()))
        };
        let single = SweepEngine::single_thread().run(&grid(&[1, 2, 3])).unwrap();
        let multi = SweepEngine::with_threads(4).run(&grid(&[1, 2, 3])).unwrap();
        assert_eq!(single, multi);
    }
}
