//! Shared sweep utilities: averaged runs of the proposed algorithm and the baselines.

use baselines::BenchmarkAllocator;
use fedopt_core::{CoreError, JointOptimizer, SolverConfig};
use flsys::{Scenario, ScenarioBuilder, Weights};

/// Average `(total energy, total time)` of the proposed algorithm over several scenario seeds.
///
/// Every seed draws fresh device positions, channel gains and CPU parameters — the paper's
/// "we run our algorithm ... 100 times and take the average value" protocol, at a
/// configurable repetition count.
///
/// # Errors
///
/// Propagates the first solver error encountered.
pub fn average_proposed(
    builder: &ScenarioBuilder,
    weights: Weights,
    seeds: &[u64],
    solver: &SolverConfig,
) -> Result<(f64, f64), CoreError> {
    let optimizer = JointOptimizer::new(*solver);
    let mut energy = 0.0;
    let mut time = 0.0;
    for &seed in seeds {
        let scenario = builder.build(seed)?;
        let out = optimizer.solve(&scenario, weights)?;
        energy += out.total_energy_j;
        time += out.total_time_s;
    }
    let n = seeds.len().max(1) as f64;
    Ok((energy / n, time / n))
}

/// Average `(total energy, total time)` of the random benchmark over several seeds.
///
/// `random_frequency` selects the Fig. 2 variant (random `f`, max power); otherwise the
/// Fig. 3 variant (random `p`, max frequency) is used.
///
/// # Errors
///
/// Propagates scenario-construction or evaluation errors.
pub fn average_benchmark(
    builder: &ScenarioBuilder,
    seeds: &[u64],
    random_frequency: bool,
) -> Result<(f64, f64), CoreError> {
    let bench = BenchmarkAllocator::new();
    let mut energy = 0.0;
    let mut time = 0.0;
    for &seed in seeds {
        let scenario = builder.build(seed)?;
        let result = if random_frequency {
            bench.random_frequency(&scenario, seed ^ 0x9e37_79b9)?
        } else {
            bench.random_power(&scenario, seed ^ 0x9e37_79b9)?
        };
        energy += result.total_energy_j();
        time += result.total_time_s();
    }
    let n = seeds.len().max(1) as f64;
    Ok((energy / n, time / n))
}

/// Average total energy of the deadline-constrained proposed algorithm over several seeds.
/// Returns `f64::NAN` if the deadline is infeasible for every seed.
///
/// # Errors
///
/// Propagates solver errors other than [`CoreError::InfeasibleDeadline`].
pub fn average_proposed_with_deadline(
    builder: &ScenarioBuilder,
    deadline_s: f64,
    seeds: &[u64],
    solver: &SolverConfig,
) -> Result<f64, CoreError> {
    let optimizer = JointOptimizer::new(*solver);
    let mut energy = 0.0;
    let mut count = 0usize;
    for &seed in seeds {
        let scenario = builder.build(seed)?;
        match optimizer.solve_with_deadline(&scenario, deadline_s) {
            Ok(out) => {
                energy += out.total_energy_j;
                count += 1;
            }
            Err(CoreError::InfeasibleDeadline { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    if count == 0 {
        Ok(f64::NAN)
    } else {
        Ok(energy / count as f64)
    }
}

/// Runs a per-seed closure over scenarios built from the same builder and averages its output.
/// Seeds whose closure returns `None` (e.g. infeasible deadline) are skipped.
///
/// # Errors
///
/// Propagates scenario-construction errors and errors returned by the closure.
pub fn average_metric<F>(builder: &ScenarioBuilder, seeds: &[u64], mut f: F) -> Result<f64, CoreError>
where
    F: FnMut(&Scenario) -> Result<Option<f64>, CoreError>,
{
    let mut total = 0.0;
    let mut count = 0usize;
    for &seed in seeds {
        let scenario = builder.build(seed)?;
        if let Some(v) = f(&scenario)? {
            total += v;
            count += 1;
        }
    }
    if count == 0 {
        Ok(f64::NAN)
    } else {
        Ok(total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_builder() -> ScenarioBuilder {
        ScenarioBuilder::paper_default().with_devices(6)
    }

    #[test]
    fn proposed_beats_benchmark_on_average() {
        let builder = small_builder();
        let seeds = [1, 2];
        let solver = SolverConfig::fast();
        let (e_prop, _) = average_proposed(&builder, Weights::balanced(), &seeds, &solver).unwrap();
        let (e_bench, _) = average_benchmark(&builder, &seeds, true).unwrap();
        assert!(e_prop < e_bench, "proposed {e_prop} should beat benchmark {e_bench}");
    }

    #[test]
    fn deadline_average_handles_infeasible() {
        let builder = small_builder();
        let solver = SolverConfig::fast();
        let nan = average_proposed_with_deadline(&builder, 1e-6, &[1], &solver).unwrap();
        assert!(nan.is_nan());
        let ok = average_proposed_with_deadline(&builder, 200.0, &[1], &solver).unwrap();
        assert!(ok.is_finite() && ok > 0.0);
    }

    #[test]
    fn average_metric_skips_none() {
        let builder = small_builder();
        let v = average_metric(&builder, &[1, 2, 3], |s| {
            Ok(if s.num_devices() > 0 { Some(2.0) } else { None })
        })
        .unwrap();
        assert_eq!(v, 2.0);
        let nan = average_metric(&builder, &[1], |_s| Ok(None)).unwrap();
        assert!(nan.is_nan());
    }
}
