//! Tabular and machine-readable output for regenerated figures.

use crate::json::Json;
use serde::{Deserialize, Serialize};

/// One regenerated figure (or sub-figure): an x-axis sweep with one column per series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureReport {
    /// Identifier matching the paper, e.g. `"fig2a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis (sweep variable).
    pub x_label: String,
    /// Label of the y axis (metric).
    pub y_label: String,
    /// Column (series) names, e.g. one per weight pair plus the benchmark.
    pub columns: Vec<String>,
    /// Rows: the x value followed by one y value per column (`f64::NAN` marks a missing
    /// point, e.g. an infeasible deadline).
    pub rows: Vec<(f64, Vec<f64>)>,
    /// Per-row feasible-sample counts behind each cell, parallel to [`Self::rows`]. An
    /// empty inner vector means the counts are unknown (rows appended via
    /// [`Self::push_row`]); otherwise one count per column. A `NaN` cell with a recorded
    /// count of `0` is the labelled "no feasible draw" condition, not a numerical accident.
    pub counts: Vec<Vec<usize>>,
    /// Optional provenance caveat attached to the whole report — e.g. "salvaged fleet
    /// run: seeds 2..4 missing" when a `--allow-partial` merge completed with holes.
    /// `None` (the default) renders nothing, so fault-free output stays byte-identical.
    pub note: Option<String>,
}

impl FigureReport {
    /// Creates an empty report with the given metadata.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str, columns: Vec<String>) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            columns,
            rows: Vec::new(),
            counts: Vec::new(),
            note: None,
        }
    }

    /// Appends one row with unknown sample counts. `values` must have one entry per column.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of columns (a programming error in
    /// the harness, not a data condition).
    pub fn push_row(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width must match column count");
        self.rows.push((x, values));
        self.counts.push(Vec::new());
    }

    /// Appends one row together with the per-cell feasible-sample counts.
    ///
    /// # Panics
    ///
    /// Panics if `values` or `cell_counts` do not have one entry per column.
    pub fn push_row_with_counts(&mut self, x: f64, values: Vec<f64>, cell_counts: Vec<usize>) {
        assert_eq!(values.len(), self.columns.len(), "row width must match column count");
        assert_eq!(cell_counts.len(), self.columns.len(), "count width must match column count");
        self.rows.push((x, values));
        self.counts.push(cell_counts);
    }

    /// The feasible-sample count behind one cell, if recorded.
    pub fn sample_count(&self, row: usize, col: usize) -> Option<usize> {
        self.counts.get(row).and_then(|c| c.get(col)).copied()
    }

    /// The series names.
    pub fn series_names(&self) -> &[String] {
        &self.columns
    }

    /// Extracts one series as `(x, y)` pairs.
    pub fn series(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|(x, v)| (*x, v[idx])).collect())
    }

    /// Renders the report as an aligned plain-text table. `NaN` cells render as `-`; when
    /// the cell's sample count is recorded as zero they render as `n=0` (every draw was
    /// infeasible). Rows with recorded sample counts are followed by one uniform
    /// `feasible draws` footer — identical in form for every report of a figure (the
    /// energy and time tables used to disagree on when infeasible-cell counts showed up;
    /// now both always carry the per-point counts).
    pub fn to_table_string(&self) -> String {
        let mut header: Vec<String> = vec![self.x_label.clone()];
        header.extend(self.columns.iter().cloned());
        let mut table: Vec<Vec<String>> = vec![header];
        for (row_idx, (x, values)) in self.rows.iter().enumerate() {
            let mut row = vec![format!("{x:.4}")];
            row.extend(values.iter().enumerate().map(|(col, v)| {
                if v.is_nan() {
                    match self.sample_count(row_idx, col) {
                        Some(0) => "n=0".to_string(),
                        _ => "-".to_string(),
                    }
                } else {
                    format!("{v:.4}")
                }
            }));
            table.push(row);
        }
        let widths: Vec<usize> = (0..table[0].len())
            .map(|c| table.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = format!("# {} — {} [{}]\n", self.id, self.title, self.y_label);
        for row in &table {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(cell, w)| format!("{cell:>w$}")).collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for line in self.feasible_summary_lines() {
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(note) = &self.note {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// The uniform feasible-draw footer: empty when no row recorded counts, one compact
    /// line when every recorded cell saw the same number of feasible draws, otherwise one
    /// line per point listing the per-column counts.
    fn feasible_summary_lines(&self) -> Vec<String> {
        let recorded: Vec<(f64, &[usize])> = self
            .rows
            .iter()
            .zip(&self.counts)
            .filter(|(_, c)| !c.is_empty())
            .map(|((x, _), c)| (*x, c.as_slice()))
            .collect();
        if recorded.is_empty() {
            return Vec::new();
        }
        let first = recorded[0].1[0];
        if recorded.iter().all(|(_, c)| c.iter().all(|&n| n == first)) {
            return vec![format!("feasible draws: {first} per cell")];
        }
        let mut lines = vec!["feasible draws per point (one count per column):".to_string()];
        for (x, counts) in recorded {
            let cells: Vec<String> = counts.iter().map(|n| n.to_string()).collect();
            lines.push(format!("  {x:.4}: {}", cells.join(" ")));
        }
        lines
    }

    /// The report as a machine-readable JSON value: metadata, columns, and one object per
    /// row carrying the x value, the per-column y values (`null` for `NaN` cells), and —
    /// when recorded — the per-column feasible-draw counts. Member order is fixed and
    /// floats are shortest-round-trip, so the output is byte-stable (golden-file safe).
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .zip(&self.counts)
            .map(|((x, values), counts)| {
                let mut members = vec![
                    ("x".to_string(), Json::Num(*x)),
                    (
                        "values".to_string(),
                        Json::Arr(
                            values
                                .iter()
                                .map(|&v| if v.is_nan() { Json::Null } else { Json::Num(v) })
                                .collect(),
                        ),
                    ),
                ];
                if !counts.is_empty() {
                    members.push((
                        "feasible".to_string(),
                        Json::Arr(counts.iter().map(|&n| Json::uint(n as u64)).collect()),
                    ));
                }
                Json::Obj(members)
            })
            .collect();
        let mut members = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("title".to_string(), Json::Str(self.title.clone())),
            ("x_label".to_string(), Json::Str(self.x_label.clone())),
            ("y_label".to_string(), Json::Str(self.y_label.clone())),
            (
                "columns".to_string(),
                Json::Arr(self.columns.iter().map(|c| Json::Str(c.clone())).collect()),
            ),
            ("rows".to_string(), Json::Arr(rows)),
        ];
        if let Some(note) = &self.note {
            members.push(("note".to_string(), Json::Str(note.clone())));
        }
        Json::Obj(members)
    }

    /// [`FigureReport::to_json`], pretty-printed.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Renders the report as CSV (header row, then one line per x value).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.replace(',', ";"));
        }
        out.push('\n');
        for (x, values) in &self.rows {
            out.push_str(&format!("{x}"));
            for v in values {
                out.push(',');
                if v.is_nan() {
                    out.push_str("NA");
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut r = FigureReport::new(
            "fig2a",
            "Total energy vs p_max",
            "p_max (dBm)",
            "energy (J)",
            vec!["w1=0.9".into(), "benchmark".into()],
        );
        r.push_row(5.0, vec![10.0, 50.0]);
        r.push_row(6.0, vec![11.0, f64::NAN]);
        r
    }

    #[test]
    fn table_and_csv_contain_all_cells() {
        let r = sample();
        let table = r.to_table_string();
        assert!(table.contains("fig2a"));
        assert!(table.contains("benchmark"));
        assert!(table.contains("50.0000"));
        assert!(table.contains("-"));
        let csv = r.to_csv_string();
        assert!(csv.starts_with("p_max (dBm),w1=0.9,benchmark"));
        assert!(csv.contains("5,10,50"));
        assert!(csv.contains("NA"));
    }

    #[test]
    fn series_extraction_works() {
        let r = sample();
        let s = r.series("w1=0.9").unwrap();
        assert_eq!(s, vec![(5.0, 10.0), (6.0, 11.0)]);
        assert!(r.series("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut r = sample();
        r.push_row(7.0, vec![1.0]);
    }

    #[test]
    fn counts_travel_with_rows_and_label_empty_cells() {
        let mut r = FigureReport::new("fig7", "t", "T (s)", "energy (J)", vec!["proposed".into()]);
        r.push_row_with_counts(100.0, vec![f64::NAN], vec![0]);
        r.push_row_with_counts(150.0, vec![42.0], vec![5]);
        assert_eq!(r.sample_count(0, 0), Some(0));
        assert_eq!(r.sample_count(1, 0), Some(5));
        let table = r.to_table_string();
        assert!(table.contains("n=0"), "zero-sample cells must be labelled: {table}");
        // Rows appended without counts report `None`.
        r.push_row(200.0, vec![40.0]);
        assert_eq!(r.sample_count(2, 0), None);
    }

    #[test]
    #[should_panic(expected = "count width")]
    fn mismatched_count_width_panics() {
        let mut r = sample();
        r.push_row_with_counts(7.0, vec![1.0, 2.0], vec![1]);
    }

    fn counted() -> FigureReport {
        let mut r = FigureReport::new("fig7", "t", "T (s)", "energy (J)", vec!["a".into()]);
        r.push_row_with_counts(100.0, vec![f64::NAN], vec![0]);
        r.push_row_with_counts(150.0, vec![42.5], vec![5]);
        r
    }

    #[test]
    fn feasible_footer_is_uniform_across_metrics() {
        // Uneven counts: per-point lines.
        let table = counted().to_table_string();
        assert!(
            table.contains("feasible draws per point"),
            "uneven counts need per-point lines: {table}"
        );
        assert!(table.contains("100.0000: 0"), "{table}");
        assert!(table.contains("150.0000: 5"), "{table}");

        // Uniform counts: one compact line.
        let mut r = sample(); // rows appended without counts -> no footer
        assert!(!r.to_table_string().contains("feasible draws"));
        r.push_row_with_counts(7.0, vec![1.0, 2.0], vec![3, 3]);
        let table = r.to_table_string();
        assert!(table.contains("feasible draws: 3 per cell"), "{table}");
    }

    #[test]
    fn note_renders_only_when_set() {
        let mut r = sample();
        assert!(!r.to_table_string().contains("note:"));
        assert!(r.to_json().get("note").is_none());
        r.note = Some("salvaged fleet run: seeds 2..4 missing".to_string());
        assert!(r.to_table_string().ends_with("note: salvaged fleet run: seeds 2..4 missing\n"));
        assert_eq!(
            r.to_json().get("note").unwrap().as_str(),
            Some("salvaged fleet run: seeds 2..4 missing")
        );
    }

    #[test]
    fn json_report_round_trips_and_labels_nan_as_null() {
        let r = counted();
        let json = r.to_json();
        let text = r.to_json_string();
        assert_eq!(Json::parse(&text).unwrap(), json);
        let rows = json.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].get("values").unwrap().as_array().unwrap()[0], Json::Null);
        assert_eq!(rows[0].get("feasible").unwrap().as_array().unwrap()[0].as_u64(), Some(0));
        assert_eq!(rows[1].get("values").unwrap().as_array().unwrap()[0].as_f64(), Some(42.5));
        assert_eq!(json.get("id").unwrap().as_str(), Some("fig7"));
        // Rows without recorded counts omit the `feasible` member entirely.
        let bare = sample().to_json();
        let bare_rows = bare.get("rows").unwrap().as_array().unwrap();
        assert!(bare_rows[0].get("feasible").is_none());
    }
}
