//! Tabular output for regenerated figures.

use serde::{Deserialize, Serialize};

/// One regenerated figure (or sub-figure): an x-axis sweep with one column per series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureReport {
    /// Identifier matching the paper, e.g. `"fig2a"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis (sweep variable).
    pub x_label: String,
    /// Label of the y axis (metric).
    pub y_label: String,
    /// Column (series) names, e.g. one per weight pair plus the benchmark.
    pub columns: Vec<String>,
    /// Rows: the x value followed by one y value per column (`f64::NAN` marks a missing
    /// point, e.g. an infeasible deadline).
    pub rows: Vec<(f64, Vec<f64>)>,
    /// Per-row feasible-sample counts behind each cell, parallel to [`Self::rows`]. An
    /// empty inner vector means the counts are unknown (rows appended via
    /// [`Self::push_row`]); otherwise one count per column. A `NaN` cell with a recorded
    /// count of `0` is the labelled "no feasible draw" condition, not a numerical accident.
    pub counts: Vec<Vec<usize>>,
}

impl FigureReport {
    /// Creates an empty report with the given metadata.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str, columns: Vec<String>) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            columns,
            rows: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Appends one row with unknown sample counts. `values` must have one entry per column.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of columns (a programming error in
    /// the harness, not a data condition).
    pub fn push_row(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width must match column count");
        self.rows.push((x, values));
        self.counts.push(Vec::new());
    }

    /// Appends one row together with the per-cell feasible-sample counts.
    ///
    /// # Panics
    ///
    /// Panics if `values` or `cell_counts` do not have one entry per column.
    pub fn push_row_with_counts(&mut self, x: f64, values: Vec<f64>, cell_counts: Vec<usize>) {
        assert_eq!(values.len(), self.columns.len(), "row width must match column count");
        assert_eq!(cell_counts.len(), self.columns.len(), "count width must match column count");
        self.rows.push((x, values));
        self.counts.push(cell_counts);
    }

    /// The feasible-sample count behind one cell, if recorded.
    pub fn sample_count(&self, row: usize, col: usize) -> Option<usize> {
        self.counts.get(row).and_then(|c| c.get(col)).copied()
    }

    /// The series names.
    pub fn series_names(&self) -> &[String] {
        &self.columns
    }

    /// Extracts one series as `(x, y)` pairs.
    pub fn series(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|(x, v)| (*x, v[idx])).collect())
    }

    /// Renders the report as an aligned plain-text table. `NaN` cells render as `-`; when
    /// the cell's sample count is recorded as zero they render as `n=0` (every draw was
    /// infeasible).
    pub fn to_table_string(&self) -> String {
        let mut header: Vec<String> = vec![self.x_label.clone()];
        header.extend(self.columns.iter().cloned());
        let mut table: Vec<Vec<String>> = vec![header];
        for (row_idx, (x, values)) in self.rows.iter().enumerate() {
            let mut row = vec![format!("{x:.4}")];
            row.extend(values.iter().enumerate().map(|(col, v)| {
                if v.is_nan() {
                    match self.sample_count(row_idx, col) {
                        Some(0) => "n=0".to_string(),
                        _ => "-".to_string(),
                    }
                } else {
                    format!("{v:.4}")
                }
            }));
            table.push(row);
        }
        let widths: Vec<usize> = (0..table[0].len())
            .map(|c| table.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = format!("# {} — {} [{}]\n", self.id, self.title, self.y_label);
        for row in &table {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(cell, w)| format!("{cell:>w$}")).collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the report as CSV (header row, then one line per x value).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.replace(',', ";"));
        }
        out.push('\n');
        for (x, values) in &self.rows {
            out.push_str(&format!("{x}"));
            for v in values {
                out.push(',');
                if v.is_nan() {
                    out.push_str("NA");
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut r = FigureReport::new(
            "fig2a",
            "Total energy vs p_max",
            "p_max (dBm)",
            "energy (J)",
            vec!["w1=0.9".into(), "benchmark".into()],
        );
        r.push_row(5.0, vec![10.0, 50.0]);
        r.push_row(6.0, vec![11.0, f64::NAN]);
        r
    }

    #[test]
    fn table_and_csv_contain_all_cells() {
        let r = sample();
        let table = r.to_table_string();
        assert!(table.contains("fig2a"));
        assert!(table.contains("benchmark"));
        assert!(table.contains("50.0000"));
        assert!(table.contains("-"));
        let csv = r.to_csv_string();
        assert!(csv.starts_with("p_max (dBm),w1=0.9,benchmark"));
        assert!(csv.contains("5,10,50"));
        assert!(csv.contains("NA"));
    }

    #[test]
    fn series_extraction_works() {
        let r = sample();
        let s = r.series("w1=0.9").unwrap();
        assert_eq!(s, vec![(5.0, 10.0), (6.0, 11.0)]);
        assert!(r.series("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut r = sample();
        r.push_row(7.0, vec![1.0]);
    }

    #[test]
    fn counts_travel_with_rows_and_label_empty_cells() {
        let mut r = FigureReport::new("fig7", "t", "T (s)", "energy (J)", vec!["proposed".into()]);
        r.push_row_with_counts(100.0, vec![f64::NAN], vec![0]);
        r.push_row_with_counts(150.0, vec![42.0], vec![5]);
        assert_eq!(r.sample_count(0, 0), Some(0));
        assert_eq!(r.sample_count(1, 0), Some(5));
        let table = r.to_table_string();
        assert!(table.contains("n=0"), "zero-sample cells must be labelled: {table}");
        // Rows appended without counts report `None`.
        r.push_row(200.0, vec![40.0]);
        assert_eq!(r.sample_count(2, 0), None);
    }

    #[test]
    #[should_panic(expected = "count width")]
    fn mismatched_count_width_panics() {
        let mut r = sample();
        r.push_row_with_counts(7.0, vec![1.0, 2.0], vec![1]);
    }
}
