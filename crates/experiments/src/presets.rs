//! The paper's seven evaluation figures as [`ExperimentSpec`] values — the figure
//! library turned into *data*.
//!
//! Each figure has a [`Variant::Quick`] preset (small device counts and seed grids,
//! suitable for CI and benches) and a [`Variant::Paper`] preset (the paper's 50-device,
//! 100-draws-per-point protocol). The specs compile — via [`ExperimentSpec::grid`] — to
//! exactly the [`crate::engine::SweepGrid`]s the historical `fig2`…`fig8` config structs
//! built by hand, and the `spec_identity` integration test pins that equivalence arm by
//! arm and bit by bit.
//!
//! The **paper** presets pin the warm-start continuation on
//! (`engine.warm_start = Some(true)`): a full-scale figure run is exactly the repeated
//! re-solving of slowly-moving problems the continuation was built for (~2.2× end to
//! end), and warm results agree with cold within the solver tolerances. The quick presets
//! leave the flag unset, so the library default — warm, since the continuation became the
//! library-wide default — applies, and an explicit `FEDOPT_WARM_START` environment
//! setting (`0` is the cold escape hatch) still overrides either direction.
//!
//! Beyond the seven figures, [`large_n`] is the fleet-scale quick preset: one sweep point
//! at a caller-chosen device count (10³–10⁶), few seeds, the reference polish disabled —
//! the spec-expressible form of the `large_n` benchmark scenarios.

use crate::spec::{
    ArmKind, ArmSpec, AxisKind, AxisSpec, BenchmarkDraw, DeadlineSpec, ExperimentSpec, Metric,
    ReportSpec, RoundPolicy, RoundPolicySpec, RoundsReportSpec, RoundsSpec, ScenarioSpec, SeedSpec,
    SimTrainingSpec, SolverSpec, StragglerSpec,
};
use baselines::StreamDerivation;
use flsys::Weights;

/// Which preset scale of a figure to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Small CI-friendly preset (the historical `FigNConfig::quick`).
    Quick,
    /// The paper's full protocol (the historical `FigNConfig::paper`), 100 draws per
    /// point, warm start on by default.
    Paper,
}

impl Variant {
    fn is_paper(self) -> bool {
        matches!(self, Self::Paper)
    }

    fn suffix(self) -> &'static str {
        match self {
            Self::Quick => "quick",
            Self::Paper => "paper",
        }
    }
}

/// The figure numbers with presets in this module.
pub const FIGURES: [u8; 7] = [2, 3, 4, 5, 6, 7, 8];

/// One-line summaries, parallel to [`FIGURES`] (what `fedopt list` prints).
pub fn summary(fig: u8) -> Option<&'static str> {
    Some(match fig {
        2 => "energy & delay vs maximum transmit power (five weight pairs + benchmark)",
        3 => "energy & delay vs maximum CPU frequency (five weight pairs + benchmark)",
        4 => "energy & delay vs number of devices (total samples fixed)",
        5 => "energy & delay vs cell radius, for N ∈ {20, 50, 80}",
        6 => "energy & delay vs local iterations, for R_g ∈ {50…400}",
        7 => "energy vs completion-time deadline: joint vs comm-only vs comp-only",
        8 => "energy vs maximum transmit power at fixed deadlines: proposed vs Scheme 1",
        _ => return None,
    })
}

/// The spec of one figure at one scale, or `None` for an unknown figure number.
pub fn spec(fig: u8, variant: Variant) -> Option<ExperimentSpec> {
    Some(match fig {
        2 => fig2(variant),
        3 => fig3(variant),
        4 => fig4(variant),
        5 => fig5(variant),
        6 => fig6(variant),
        7 => fig7(variant),
        8 => fig8(variant),
        _ => return None,
    })
}

/// All seven figure specs at one scale, in figure order.
pub fn all(variant: Variant) -> Vec<ExperimentSpec> {
    FIGURES.iter().map(|&fig| spec(fig, variant).expect("FIGURES entries have specs")).collect()
}

fn base(fig: u8, variant: Variant, description: &str) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        &format!("fig{fig}"),
        AxisSpec { kind: AxisKind::PMaxDbm, values: Vec::new() },
    );
    spec.description = format!("Fig. {fig} ({} preset): {description}", variant.suffix());
    spec.solver = if variant.is_paper() { SolverSpec::default() } else { SolverSpec::fast() };
    if variant.is_paper() {
        // ROADMAP item: full-scale paper runs default the warm-start continuation on.
        // Quick presets stay unset → the cold bit-exact reference path.
        spec.engine.warm_start = Some(true);
    }
    spec
}

fn proposed_sweep_arms(weights: &[Weights]) -> Vec<ArmSpec> {
    weights.iter().map(|&w| ArmSpec::new(ArmKind::Proposed { weights: w })).collect()
}

fn energy_time_reports(fig: u8, subject: &str, x_label: &str) -> Vec<ReportSpec> {
    vec![
        ReportSpec::new(
            &format!("fig{fig}a"),
            Metric::Energy,
            &format!("Total energy consumption vs {subject}"),
            x_label,
        ),
        ReportSpec::new(
            &format!("fig{fig}b"),
            Metric::Time,
            &format!("Total completion time vs {subject}"),
            x_label,
        ),
    ]
}

/// Figure 2 — energy/delay vs maximum transmit power.
pub fn fig2(variant: Variant) -> ExperimentSpec {
    let mut spec = base(
        2,
        variant,
        "total energy and delay vs the maximum transmit power limit, five weight pairs of \
         the proposed algorithm against the random benchmark",
    );
    spec.axis = AxisSpec {
        kind: AxisKind::PMaxDbm,
        values: match variant {
            Variant::Quick => vec![5.0, 8.0, 10.0, 12.0],
            Variant::Paper => (5..=12).map(f64::from).collect(),
        },
    };
    spec.scenario.devices = Some(if variant.is_paper() { 50 } else { 15 });
    spec.arms = proposed_sweep_arms(&Weights::paper_sweep());
    spec.arms.push(ArmSpec::new(ArmKind::Benchmark { draw: BenchmarkDraw::Frequency }));
    spec.seeds = match variant {
        Variant::Quick => SeedSpec::list(vec![11, 12]),
        Variant::Paper => SeedSpec::count(100),
    };
    spec.reports = energy_time_reports(2, "maximum transmit power", "p_max (dBm)");
    spec
}

/// Figure 3 — energy/delay vs maximum CPU frequency.
pub fn fig3(variant: Variant) -> ExperimentSpec {
    let mut spec = base(
        3,
        variant,
        "total energy and delay vs the maximum CPU frequency, five weight pairs of the \
         proposed algorithm against the random benchmark",
    );
    spec.axis = AxisSpec {
        kind: AxisKind::FMaxGhz,
        values: match variant {
            Variant::Quick => vec![0.25, 0.5, 1.0, 2.0],
            Variant::Paper => vec![0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0],
        },
    };
    spec.scenario.devices = Some(if variant.is_paper() { 50 } else { 15 });
    spec.arms = proposed_sweep_arms(&Weights::paper_sweep());
    spec.arms.push(ArmSpec::new(ArmKind::Benchmark { draw: BenchmarkDraw::Power }));
    spec.seeds = match variant {
        Variant::Quick => SeedSpec::list(vec![21, 22]),
        Variant::Paper => SeedSpec::count(100),
    };
    spec.reports = energy_time_reports(3, "maximum CPU frequency", "f_max (GHz)");
    spec
}

/// Figure 4 — energy/delay vs number of devices at a fixed total sample count.
pub fn fig4(variant: Variant) -> ExperimentSpec {
    let mut spec = base(
        4,
        variant,
        "total energy and delay vs the number of devices, the total training set fixed at \
         25 000 samples split equally",
    );
    spec.axis = AxisSpec {
        kind: AxisKind::Devices,
        values: match variant {
            Variant::Quick => vec![10.0, 20.0, 40.0],
            Variant::Paper => vec![20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0],
        },
    };
    spec.scenario.total_samples = Some(25_000);
    let weights: Vec<Weights> = match variant {
        Variant::Quick => vec![
            Weights::new(0.9, 0.1).expect("valid"),
            Weights::new(0.5, 0.5).expect("valid"),
            Weights::new(0.1, 0.9).expect("valid"),
        ],
        Variant::Paper => Weights::paper_sweep().to_vec(),
    };
    spec.arms = proposed_sweep_arms(&weights);
    spec.seeds = match variant {
        Variant::Quick => SeedSpec::list(vec![31]),
        Variant::Paper => SeedSpec::count(100),
    };
    spec.reports = energy_time_reports(4, "number of devices", "number of devices");
    spec
}

/// Figure 5 — energy/delay vs cell radius, one series per device count.
pub fn fig5(variant: Variant) -> ExperimentSpec {
    let mut spec = base(
        5,
        variant,
        "total energy and delay vs the radius of the placement disc, one series per device \
         count, at w1 = w2 = 0.5",
    );
    spec.axis = AxisSpec {
        kind: AxisKind::RadiusKm,
        values: match variant {
            Variant::Quick => vec![0.1, 0.5, 1.0],
            Variant::Paper => vec![0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5],
        },
    };
    spec.scenario.samples_per_device = Some(500);
    let device_counts: &[usize] = match variant {
        Variant::Quick => &[10, 20],
        Variant::Paper => &[20, 50, 80],
    };
    spec.arms = device_counts
        .iter()
        .map(|&n| {
            ArmSpec::new(ArmKind::Proposed { weights: Weights::balanced() })
                .labeled(format!("N = {n}"))
                .with_scenario(ScenarioSpec { devices: Some(n), ..ScenarioSpec::default() })
        })
        .collect();
    spec.seeds = match variant {
        Variant::Quick => SeedSpec::list(vec![41]),
        Variant::Paper => SeedSpec::count(100),
    };
    spec.reports = energy_time_reports(5, "cell radius (w1 = w2 = 0.5)", "radius (km)");
    spec
}

/// Figure 6 — energy/delay vs local iterations, one series per global-round count.
pub fn fig6(variant: Variant) -> ExperimentSpec {
    let mut spec = base(
        6,
        variant,
        "total energy and delay vs the local iterations per global round, one series per \
         global-round count, at w1 = w2 = 0.5",
    );
    spec.axis = AxisSpec {
        kind: AxisKind::LocalIterations,
        values: match variant {
            Variant::Quick => vec![10.0, 50.0, 110.0],
            Variant::Paper => vec![10.0, 30.0, 50.0, 70.0, 90.0, 110.0],
        },
    };
    spec.scenario.devices = Some(if variant.is_paper() { 50 } else { 10 });
    let global_rounds: &[u32] = match variant {
        Variant::Quick => &[50, 400],
        Variant::Paper => &[50, 100, 200, 300, 400],
    };
    spec.arms = global_rounds
        .iter()
        .map(|&rg| {
            ArmSpec::new(ArmKind::Proposed { weights: Weights::balanced() })
                .labeled(format!("R_g = {rg}"))
                .with_scenario(ScenarioSpec { global_rounds: Some(rg), ..ScenarioSpec::default() })
        })
        .collect();
    spec.seeds = match variant {
        Variant::Quick => SeedSpec::list(vec![51]),
        Variant::Paper => SeedSpec::count(100),
    };
    spec.reports = energy_time_reports(
        6,
        "local iterations per round (w1 = w2 = 0.5)",
        "local iterations R_l",
    );
    spec
}

/// Figure 7 — energy vs completion-time deadline: joint vs comm-only vs comp-only.
pub fn fig7(variant: Variant) -> ExperimentSpec {
    let mut spec = base(
        7,
        variant,
        "total energy vs the maximum completion time, the joint optimizer against \
         communication-only and computation-only optimization at p_max = 10 dBm",
    );
    spec.axis = AxisSpec {
        kind: AxisKind::DeadlineS,
        values: match variant {
            Variant::Quick => vec![100.0, 120.0, 150.0],
            Variant::Paper => vec![100.0, 110.0, 120.0, 130.0, 140.0, 150.0],
        },
    };
    spec.scenario.devices = Some(if variant.is_paper() { 50 } else { 12 });
    spec.scenario.p_max_dbm = Some(10.0);
    spec.arms = vec![
        ArmSpec::new(ArmKind::DeadlineProposed { deadline: DeadlineSpec::Axis }),
        ArmSpec::new(ArmKind::CommOnly),
        ArmSpec::new(ArmKind::CompOnly),
    ];
    spec.seeds = match variant {
        Variant::Quick => SeedSpec::list(vec![61]),
        Variant::Paper => SeedSpec::count(100),
    };
    spec.reports = vec![ReportSpec::new(
        "fig7",
        Metric::Energy,
        "Total energy consumption vs maximum completion time",
        "maximum completion time T (s)",
    )];
    spec
}

/// Figure 8 — energy vs maximum transmit power at fixed deadlines: proposed vs Scheme 1.
pub fn fig8(variant: Variant) -> ExperimentSpec {
    let mut spec = base(
        8,
        variant,
        "total energy vs the maximum transmit power at fixed completion-time deadlines, \
         the proposed algorithm against Scheme 1 (Yang et al., IEEE TWC 2021)",
    );
    spec.axis = AxisSpec {
        kind: AxisKind::PMaxDbm,
        values: match variant {
            Variant::Quick => vec![6.0, 9.0, 12.0],
            Variant::Paper => (5..=12).map(f64::from).collect(),
        },
    };
    spec.scenario.devices = Some(if variant.is_paper() { 50 } else { 12 });
    let deadlines: &[f64] = match variant {
        Variant::Quick => &[100.0, 150.0],
        Variant::Paper => &[80.0, 100.0, 150.0],
    };
    spec.arms = deadlines
        .iter()
        .flat_map(|&t| {
            [
                ArmSpec::new(ArmKind::Scheme1 { deadline_s: t }),
                ArmSpec::new(ArmKind::DeadlineProposed { deadline: DeadlineSpec::FixedS(t) }),
            ]
        })
        .collect();
    spec.seeds = match variant {
        Variant::Quick => SeedSpec::list(vec![71]),
        Variant::Paper => SeedSpec::count(100),
    };
    spec.reports = vec![ReportSpec::new(
        "fig8",
        Metric::Energy,
        "Total energy consumption vs maximum transmit power at fixed deadlines",
        "p_max (dBm)",
    )];
    spec
}

/// Fleet-scale single-scenario quick preset: one sweep point at `devices` devices, one
/// seed, the balanced-weights proposed arm only.
///
/// This is the spec-expressible form of the `large_n` benchmark scenarios (10³–10⁶
/// devices — the [`crate::spec::MAX_DEVICES`] guardrail still applies at validation).
/// Two deliberate departures from the figure presets:
///
/// * the **reference polish is off** (`solver.polish_with_reference = Some(false)`): the
///   Subproblem-2 reference polish re-evaluates an `O(n)` demand curve inside a 300-step
///   price search per solve, which is noise at paper scale and dominant past ~10³
///   devices, while the KKT path it cross-checks is itself `O(n log n)`;
/// * the seed grid is a single draw: at fleet scale the per-scenario solve *is* the
///   experiment, and averaging belongs in seed-sharded shards (see
///   [`crate::spec::MAX_SEEDS`]).
pub fn large_n(devices: usize) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        "large_n",
        AxisSpec { kind: AxisKind::Devices, values: vec![devices as f64] },
    );
    spec.description = format!(
        "large_n (quick preset): one balanced-weights solve of a {devices}-device scenario \
         (fleet-scale hot-path exercise; reference polish off)"
    );
    spec.solver = SolverSpec::fast();
    spec.solver.polish_with_reference = Some(false);
    spec.scenario.samples_per_device = Some(500);
    spec.arms = vec![ArmSpec::new(ArmKind::Proposed { weights: Weights::balanced() })];
    spec.seeds = SeedSpec::list(vec![1]);
    spec.reports = vec![
        ReportSpec::new(
            "large_n_energy",
            Metric::Energy,
            "Total energy consumption at fleet scale",
            "number of devices",
        ),
        ReportSpec::new(
            "large_n_time",
            Metric::Time,
            "Total completion time at fleet scale",
            "number of devices",
        ),
    ];
    spec
}

// ---------------------------------------------------------------------------
// Round-simulation presets (`fedopt sim --preset <name>`)
// ---------------------------------------------------------------------------

/// The named round-simulation presets, in listing order.
pub const SIM_PRESETS: [&str; 2] = ["rounds-quick", "rounds-paper"];

/// One-line summaries, parallel to [`SIM_PRESETS`] (what `fedopt list` prints).
pub fn sim_summary(name: &str) -> Option<&'static str> {
    Some(match name {
        "rounds-quick" => {
            "12-round fading/straggler simulation, 8 devices, 3 seeds: re-solve vs static \
             vs FedAECS vs ELASTIC"
        }
        "rounds-paper" => {
            "40-round fading/straggler simulation, 10 devices, 10 seeds: re-solve vs \
             static vs FedAECS vs ELASTIC"
        }
        _ => return None,
    })
}

/// The spec of one round-simulation preset, or `None` for an unknown name.
pub fn sim(name: &str) -> Option<ExperimentSpec> {
    Some(match name {
        "rounds-quick" => rounds_quick(),
        "rounds-paper" => rounds_paper(),
        _ => return None,
    })
}

/// The four-policy column set every sim preset compares. The solver arms run
/// energy-only weights (the paper's Figs. 7–8 setting): with `w1 = 1` the per-round
/// re-solve is energy-optimal for each redrawn channel, so it beats replaying the round-0
/// allocation on cumulative energy by construction — the gap the sim measures is pure
/// re-optimization gain.
fn sim_policies() -> Vec<RoundPolicySpec> {
    vec![
        RoundPolicySpec::new(RoundPolicy::ReSolve { weights: Weights::energy_only() })
            .labeled("re-solve"),
        RoundPolicySpec::new(RoundPolicy::Static { weights: Weights::energy_only() })
            .labeled("static"),
        // ε_n = ln(1 + 0.05·60) ≈ 1.39 per device; Γ ≥ 1.8 needs about four of them.
        RoundPolicySpec::new(RoundPolicy::FedAecs { epsilon: 1.8, mu: 0.05, t_max_s: None })
            .labeled("fedaecs"),
        // n_i = α·(E_i + 1) − 1 ≤ 0 ⟺ E_i ≤ (1 − α)/α ≈ 0.031 J: admits the cheap half
        // of the fleet under the sequential-upload energy model.
        RoundPolicySpec::new(RoundPolicy::Elastic { alpha: 0.97 }).labeled("elastic"),
    ]
}

/// Quick round-simulation preset: 8 devices, 12 rounds, 3 seeds, 6 dB per-round refades,
/// mild stragglers, the fast solver.
///
/// The scenario's `R_g` is pinned to the simulated horizon so the solver's objective
/// (which scales energy by `R_g`) prices exactly the rounds being simulated.
pub fn rounds_quick() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        "rounds-quick",
        AxisSpec { kind: AxisKind::Devices, values: vec![8.0] },
    );
    spec.description = "rounds-quick (sim preset): 12 global rounds over an 8-device \
                        scenario with 6 dB per-round refades and stragglers — the paper's \
                        re-solved optimizer vs a static allocation vs FedAECS/ELASTIC \
                        selection"
        .to_string();
    spec.solver = SolverSpec::fast();
    spec.scenario.global_rounds = Some(12);
    spec.seeds = SeedSpec::list(vec![11, 12, 13]);
    spec.rounds = Some(RoundsSpec {
        rounds: 12,
        refade_db: 6.0,
        channel_stream: StreamDerivation::RoundChannelFnv,
        straggler: StragglerSpec { dropout: 0.08, slow: 0.15, slow_factor: 2.0 },
        training: SimTrainingSpec::default(),
        policies: sim_policies(),
        report: RoundsReportSpec {
            id: "rounds-quick".to_string(),
            title: "Round trajectory under per-round fading and stragglers (quick)".to_string(),
        },
    });
    spec
}

/// Full-scale round-simulation preset: 10 devices, 40 rounds, 10 seeds, heavier
/// stragglers, the default solver, warm-start continuation pinned on (the per-round
/// re-solve is exactly the repeated slowly-moving problem the continuation was built
/// for).
pub fn rounds_paper() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        "rounds-paper",
        AxisSpec { kind: AxisKind::Devices, values: vec![10.0] },
    );
    spec.description = "rounds-paper (sim preset): 40 global rounds over a 10-device \
                        scenario with 6 dB per-round refades and heavier stragglers — the \
                        paper's re-solved optimizer vs a static allocation vs \
                        FedAECS/ELASTIC selection"
        .to_string();
    spec.engine.warm_start = Some(true);
    spec.scenario.global_rounds = Some(40);
    spec.seeds = SeedSpec::count(10);
    spec.rounds = Some(RoundsSpec {
        rounds: 40,
        refade_db: 6.0,
        channel_stream: StreamDerivation::RoundChannelFnv,
        straggler: StragglerSpec { dropout: 0.1, slow: 0.2, slow_factor: 2.5 },
        training: SimTrainingSpec::default(),
        policies: sim_policies(),
        report: RoundsReportSpec {
            id: "rounds-paper".to_string(),
            title: "Round trajectory under per-round fading and stragglers (full scale)"
                .to_string(),
        },
    });
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SolverPreset;

    #[test]
    fn every_figure_has_both_variants_and_they_validate() {
        for &fig in &FIGURES {
            assert!(summary(fig).is_some(), "figure {fig} needs a summary");
            for variant in [Variant::Quick, Variant::Paper] {
                let spec = spec(fig, variant).unwrap();
                spec.validate().unwrap_or_else(|e| panic!("fig{fig} {variant:?}: {e}"));
                assert_eq!(spec.id, format!("fig{fig}"));
                assert!(!spec.reports.is_empty());
            }
        }
        assert!(spec(1, Variant::Quick).is_none());
        assert!(spec(9, Variant::Paper).is_none());
        assert!(summary(0).is_none());
        assert_eq!(all(Variant::Quick).len(), FIGURES.len());
    }

    #[test]
    fn paper_presets_default_warm_start_on_and_quick_stays_cold() {
        for &fig in &FIGURES {
            let quick = spec(fig, Variant::Quick).unwrap();
            assert_eq!(
                quick.engine.warm_start, None,
                "fig{fig} quick must inherit the library default (warm, FEDOPT_WARM_START=0 \
                 to escape)"
            );
            assert_eq!(quick.solver.preset, SolverPreset::Fast);
            let paper = spec(fig, Variant::Paper).unwrap();
            assert_eq!(
                paper.engine.warm_start,
                Some(true),
                "fig{fig} paper must default the warm-start continuation on"
            );
            assert_eq!(paper.solver.preset, SolverPreset::Default);
            assert_eq!(paper.seeds, SeedSpec::count(100), "paper protocol is 100 draws/point");
        }
    }

    #[test]
    fn paper_scales_match_the_paper_protocol() {
        let fig2 = spec(2, Variant::Paper).unwrap();
        assert_eq!(fig2.scenario.devices, Some(50));
        assert_eq!(fig2.axis.values.len(), 8);
        assert_eq!(fig2.arms.len(), 6);
        let fig5 = spec(5, Variant::Paper).unwrap();
        assert_eq!(fig5.arms.len(), 3);
        assert_eq!(fig5.arms[1].label.as_deref(), Some("N = 50"));
        let fig8 = spec(8, Variant::Paper).unwrap();
        assert_eq!(fig8.arms.len(), 6, "a (scheme1, proposed) pair per deadline");
    }

    #[test]
    fn sim_presets_validate_and_round_trip() {
        for name in SIM_PRESETS {
            assert!(sim_summary(name).is_some(), "{name} needs a summary");
            let spec = sim(name).unwrap();
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.id, name);
            let rounds = spec.rounds.as_ref().expect("sim presets carry a rounds section");
            assert_eq!(rounds.policies.len(), 4);
            assert_eq!(rounds.report.id, name);
            assert!(spec.arms.is_empty(), "sim presets have no sweep arms");
            // The rounds section survives the wire format losslessly.
            let text = spec.to_json_string();
            assert_eq!(ExperimentSpec::from_json_str(&text).unwrap(), spec);
        }
        assert!(sim("rounds-nope").is_none());
        assert!(sim_summary("fig2").is_none());
    }

    #[test]
    fn large_n_preset_validates_and_disables_the_reference_polish() {
        for devices in [1_000usize, 10_000, 100_000] {
            let spec = large_n(devices);
            spec.validate().unwrap_or_else(|e| panic!("large_n({devices}): {e}"));
            assert_eq!(spec.axis.kind, AxisKind::Devices);
            assert_eq!(spec.axis.values, vec![devices as f64]);
            assert_eq!(spec.solver.polish_with_reference, Some(false));
            assert_eq!(spec.arms.len(), 1);
        }
        // Past the guardrail the spec must fail loudly at validation.
        let err = large_n(crate::spec::MAX_DEVICES + 1).validate().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("large_n"), "guardrail error must point at the preset: {msg}");
    }
}
