//! Figure 3 — total energy (3a) and total delay (3b) vs the maximum CPU frequency.
//!
//! Same protocol as Figure 2, but the sweep variable is `f_max` (0.1 GHz to 2 GHz) and the
//! benchmark draws a random transmit power while running at `f_max`.

use crate::arms::{BenchmarkArm, ProposedArm};
use crate::engine::{SweepEngine, SweepGrid};
use crate::report::FigureReport;
use fedopt_core::{CoreError, SolverConfig};
use flsys::{ScenarioBuilder, Weights};

/// Configuration of the Figure-3 sweep.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Number of devices.
    pub devices: usize,
    /// Scenario seeds to average over.
    pub seeds: Vec<u64>,
    /// The `f_max` values to sweep, in GHz.
    pub f_max_ghz: Vec<f64>,
    /// The weight pairs to plot.
    pub weights: Vec<Weights>,
    /// Solver settings.
    pub solver: SolverConfig,
}

impl Fig3Config {
    /// Small preset for CI / benches.
    pub fn quick() -> Self {
        Self {
            devices: 15,
            seeds: vec![21, 22],
            f_max_ghz: vec![0.25, 0.5, 1.0, 2.0],
            weights: Weights::paper_sweep().to_vec(),
            solver: SolverConfig::fast(),
        }
    }

    /// The paper's setup: 50 devices, `f_max` from 0.1 GHz to 2 GHz, 100 scenario
    /// draws per point.
    pub fn paper() -> Self {
        Self {
            devices: 50,
            seeds: (0..100).collect(),
            f_max_ghz: vec![0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0],
            weights: Weights::paper_sweep().to_vec(),
            solver: SolverConfig::default(),
        }
    }

    /// The sweep grid this configuration describes.
    pub fn grid(&self) -> SweepGrid {
        let mut grid = SweepGrid::new(self.seeds.clone());
        for &f_max in &self.f_max_ghz {
            grid = grid.point(
                f_max,
                ScenarioBuilder::paper_default().with_devices(self.devices).with_f_max_ghz(f_max),
            );
        }
        for &w in &self.weights {
            grid = grid.arm(ProposedArm::new(w, self.solver));
        }
        grid.arm(BenchmarkArm::random_power())
    }
}

/// The spec twin of [`Fig3Config::quick`]: the same sweep as a serializable
/// [`ExperimentSpec`](crate::spec::ExperimentSpec) (see [`crate::presets`]); compiled via
/// [`SweepEngine::run_spec`](crate::engine::SweepEngine::run_spec) it is bit-identical to
/// this module's imperative path.
pub fn quick_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig3(crate::presets::Variant::Quick)
}

/// The spec twin of [`Fig3Config::paper`]. Unlike the legacy config, the paper-scale
/// spec defaults the warm-start continuation on (`engine.warm_start = Some(true)`);
/// `FEDOPT_WARM_START=0` still forces it off.
pub fn paper_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig3(crate::presets::Variant::Paper)
}

/// Runs the sweep on a default engine and returns `(energy report, delay report)` —
/// Fig. 3a and Fig. 3b.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run(cfg: &Fig3Config) -> Result<(FigureReport, FigureReport), CoreError> {
    run_with_engine(cfg, &SweepEngine::new())
}

/// [`run`] on an explicit engine.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run_with_engine(
    cfg: &Fig3Config,
    engine: &SweepEngine,
) -> Result<(FigureReport, FigureReport), CoreError> {
    let result = engine.run(&cfg.grid())?;
    Ok((
        result.energy_report(
            "fig3a",
            "Total energy consumption vs maximum CPU frequency",
            "f_max (GHz)",
        ),
        result.time_report(
            "fig3b",
            "Total completion time vs maximum CPU frequency",
            "f_max (GHz)",
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_energy_rises_with_fmax_and_proposed_plateaus() {
        // With 6 devices and an energy-leaning weight pair the unconstrained optimum frequency
        // sits well below 1.2 GHz, so the plateau (Fig. 3a's flat proposed lines) shows
        // between caps of 1.2 GHz and 2 GHz while the benchmark, which always runs at the
        // cap, keeps rising.
        let cfg = Fig3Config {
            devices: 6,
            seeds: vec![2],
            f_max_ghz: vec![1.2, 2.0],
            weights: vec![Weights::new(0.9, 0.1).unwrap()],
            solver: SolverConfig::fast(),
        };
        let (energy, delay) = run(&cfg).unwrap();
        let bench_low = energy.rows[0].1[1];
        let bench_high = energy.rows[1].1[1];
        assert!(bench_high > bench_low);
        let prop_low = energy.rows[0].1[0];
        let prop_high = energy.rows[1].1[0];
        assert!(
            prop_high <= prop_low * 1.05,
            "proposed energy should plateau: {prop_low} -> {prop_high}"
        );
        // And the proposed energy sits below the benchmark at both caps.
        assert!(prop_low < bench_low && prop_high < bench_high);
        assert_eq!(delay.rows.len(), 2);
    }
}
