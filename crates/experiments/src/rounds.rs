//! The round-structured FL simulator behind `fedopt sim`.
//!
//! Sweeps (the rest of this crate) evaluate the paper's *closed-form* metrics: one solve
//! per `(point, arm, seed)` cell, with the channel frozen at its scenario realisation.
//! This module simulates the deployment those formulas describe, **round by round**: over
//! `T` global rounds the channel refades (per-round log-normal redraws from a pinned seed
//! stream), devices straggle or drop out, a per-round *policy* chooses the allocation and
//! the participant subset, and a real [`fedsim`] synthetic training task is stepped over
//! exactly those participants. The output is a trajectory — cumulative energy, wall-clock
//! time, participation, loss and accuracy per round — for every policy column.
//!
//! # Policies
//!
//! The closed [`RoundPolicy`] set mirrors the sweep arms plus two scheme arms from
//! related work:
//!
//! * [`RoundPolicy::ReSolve`] — re-runs Algorithm 2 on each round's redrawn channel,
//!   warm-started from the previous round's solution when the engine enables warm starts.
//!   This is what the paper's optimizer would deliver if deployed with per-round CSI.
//! * [`RoundPolicy::Static`] — solves once on the base channel and replays that
//!   allocation forever: the cost of ignoring fading.
//! * [`RoundPolicy::FedAecs`] — FedAECS-style accuracy-constrained greedy selection: the
//!   cheapest energy-per-accuracy devices are admitted until the round accuracy target is
//!   met (accuracy proxy `ε_n = ln(1 + μ·D_n)`, round accuracy `Γ = ln(1 + Σ ε_n)`).
//! * [`RoundPolicy::Elastic`] — ELASTIC-style selection with a **sequential-upload**
//!   wall-clock model (each selected device uploads alone over the full band, waiting its
//!   `t_wait` recurrence turn).
//!
//! # Determinism
//!
//! Seeds are simulated in parallel via the engine's indexed map; every per-seed
//! simulation is a pure function of `(spec, seed)` — round `t`'s channel redraw comes
//! from [`baselines::StreamDerivation::derive_round`]`(seed, t)` and straggler draws from an
//! independent stream, so no draw depends on simulation history — and the cross-seed
//! reduction folds in seed order. Output is therefore bit-identical across thread counts.

use crate::engine::{par_map_indexed_with, SweepEngine};
use crate::json::Json;
use crate::spec::{ExperimentSpec, RoundPolicy, RoundsSpec, SpecError};
use baselines::derive_stream_seed;
use fedopt_core::{CoreError, JointOptimizer, SolverWorkspace};
use fedsim::{FederatedDataset, RoundTrainer, SyntheticConfig};
use flsys::{Allocation, CostBreakdown, Scenario, ScenarioBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wireless::{ChannelGain, LogNormalShadowing};

/// One row of a policy's mean trajectory (averaged over seeds, per round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Global round index (1-based).
    pub round: u32,
    /// Mean number of participating devices this round.
    pub participants: f64,
    /// Mean energy spent this round across participants (J).
    pub round_energy_j: f64,
    /// Mean wall-clock length of this round (s).
    pub round_time_s: f64,
    /// Mean cumulative energy since round 1 (J).
    pub cumulative_energy_j: f64,
    /// Mean cumulative wall-clock time since round 1 (s).
    pub cumulative_time_s: f64,
    /// Mean training loss of the global model after this round.
    pub global_loss: f64,
    /// Mean held-out accuracy of the global model after this round.
    pub test_accuracy: f64,
}

/// End-of-run summary of one policy column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyTotals {
    /// Mean total energy of the run (J).
    pub total_energy_j: f64,
    /// Mean total wall-clock time of the run (s).
    pub total_time_s: f64,
    /// Mean final training loss.
    pub final_loss: f64,
    /// Mean final test accuracy.
    pub final_accuracy: f64,
    /// Mean fraction of the fleet participating per round.
    pub participation_rate: f64,
}

/// One policy column of the simulation: label, kind, mean trajectory and totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyResult {
    /// Display label (the spec's override or the policy kind).
    pub label: String,
    /// The policy's wire name (`"re_solve"`, `"static"`, `"fedaecs"`, `"elastic"`).
    pub kind: String,
    /// Mean trajectory over seeds, one record per round in order.
    pub trajectory: Vec<RoundRecord>,
    /// End-of-run summary.
    pub totals: PolicyTotals,
}

/// The rendered outcome of a round simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSimRun {
    /// The spec's `id`.
    pub spec_id: String,
    /// The rounds section's report id.
    pub report_id: String,
    /// The rounds section's report title.
    pub title: String,
    /// Number of devices in the simulated scenario.
    pub devices: usize,
    /// Number of simulated global rounds.
    pub rounds: u32,
    /// Number of scenario seeds averaged over.
    pub seeds: usize,
    /// One column per policy, in spec order.
    pub policies: Vec<PolicyResult>,
}

/// Raw per-seed, per-round sample before cross-seed averaging.
#[derive(Debug, Clone, Copy)]
struct RoundSample {
    participants: usize,
    round_energy_j: f64,
    round_time_s: f64,
    global_loss: f64,
    test_accuracy: f64,
}

/// Per-device round cost after the straggler slowdown is applied.
#[derive(Debug, Clone, Copy)]
struct DeviceRound {
    upload_time_s: f64,
    computation_time_s: f64,
    energy_j: f64,
}

impl DeviceRound {
    fn time_s(self) -> f64 {
        self.upload_time_s + self.computation_time_s
    }
}

/// Runs the spec's round simulation on the engine described by its [`crate::spec::EngineSpec`].
///
/// # Errors
///
/// [`SpecError::Invalid`] when the spec fails validation or has no `rounds` section, and
/// any solver error surfaced by the `re_solve`/`static` policies.
pub fn simulate(spec: &ExperimentSpec) -> Result<RoundSimRun, SpecError> {
    simulate_with_engine(spec, &spec.engine.to_engine())
}

/// Runs the spec's round simulation on an explicit engine (thread-count and warm-start
/// control for tests; the spec's own engine section is ignored).
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_with_engine(
    spec: &ExperimentSpec,
    engine: &SweepEngine,
) -> Result<RoundSimRun, SpecError> {
    spec.validate()?;
    let rounds = spec
        .rounds
        .as_ref()
        .ok_or_else(|| SpecError::invalid("rounds", "this spec has no round-simulation section"))?;
    let solver = spec
        .solver
        .resolve()
        .with_warm_start(engine.warm_starts())
        .with_superlinear_mu(engine.superlinear_mu())
        .with_adaptive_mu_bracket(engine.adaptive_mu_bracket())
        .with_outer_continuation(false);
    let seeds = spec.seeds.values();
    let template = spec
        .axis
        .kind
        .apply(spec.scenario.apply(ScenarioBuilder::paper_default()), spec.axis.values[0]);

    // One simulation per seed, engine-parallel. Each is a pure function of (spec, seed):
    // workspaces are per-worker scratch, warm state never crosses a (policy, seed) pair.
    let per_seed: Vec<Result<Vec<Vec<RoundSample>>, SpecError>> =
        par_map_indexed_with(seeds.len(), engine.threads(), SolverWorkspace::new, |ws, idx| {
            simulate_seed(rounds, &template, solver, seeds[idx], ws)
        });
    let mut trajectories = Vec::with_capacity(per_seed.len());
    for result in per_seed {
        trajectories.push(result?);
    }

    let devices = template
        .clone()
        .build(seeds[0])
        .map_err(|e| SpecError::from(CoreError::Model(e)))?
        .devices
        .len();
    Ok(reduce(spec, rounds, devices, seeds.len(), &trajectories))
}

/// Simulates every policy over all rounds for one scenario seed. Returns
/// `[policy][round] -> RoundSample`.
fn simulate_seed(
    rounds: &RoundsSpec,
    template: &ScenarioBuilder,
    solver: fedopt_core::SolverConfig,
    seed: u64,
    ws: &mut SolverWorkspace,
) -> Result<Vec<Vec<RoundSample>>, SpecError> {
    let scenario0 =
        template.clone().build(seed).map_err(|e| SpecError::from(CoreError::Model(e)))?;
    let n = scenario0.devices.len();
    let dataset = FederatedDataset::synthetic(
        &SyntheticConfig::default()
            .with_devices(n)
            .with_samples_per_device(rounds.training.samples_per_device as usize),
        derive_stream_seed(seed),
    );
    let optimizer = JointOptimizer::new(solver);

    let mut out = Vec::with_capacity(rounds.policies.len());
    for policy_spec in &rounds.policies {
        ws.reset_warm_start();
        let mut trainer = RoundTrainer::new(
            &dataset,
            rounds.training.learning_rate,
            scenario0.params.local_iterations,
        );
        // `static` pins the allocation solved on the base (round-0) channel.
        let static_alloc = match &policy_spec.policy {
            RoundPolicy::Static { weights } => {
                let alloc = optimizer.solve_with(&scenario0, *weights, ws)?.allocation;
                ws.reset_warm_start();
                Some(alloc)
            }
            _ => None,
        };

        let mut samples = Vec::with_capacity(rounds.rounds as usize);
        for round in 1..=rounds.rounds {
            let scenario_t = refade(&scenario0, rounds, seed, u64::from(round));
            let (dropped, slow) = straggler_draws(rounds, seed, u64::from(round), n);

            // Cost the round under this policy's allocation rule.
            let cost = match &policy_spec.policy {
                RoundPolicy::ReSolve { weights } => {
                    optimizer.solve_with(&scenario_t, *weights, ws)?.cost
                }
                RoundPolicy::Static { .. } => scenario_t
                    .cost(static_alloc.as_ref().expect("static allocation solved above"))
                    .map_err(|e| SpecError::from(CoreError::Model(e)))?,
                RoundPolicy::FedAecs { .. } => scenario_t
                    .cost(&Allocation::equal_split_max(&scenario_t))
                    .map_err(|e| SpecError::from(CoreError::Model(e)))?,
                RoundPolicy::Elastic { .. } => scenario_t
                    .cost(&sequential_allocation(&scenario_t))
                    .map_err(|e| SpecError::from(CoreError::Model(e)))?,
            };
            let per_device = device_rounds(&cost, &slow, rounds.straggler.slow_factor);

            let candidates: Vec<usize> = (0..n).filter(|&i| !dropped[i]).collect();
            let participants = match &policy_spec.policy {
                RoundPolicy::ReSolve { .. } | RoundPolicy::Static { .. } => candidates,
                RoundPolicy::FedAecs { epsilon, mu, t_max_s } => {
                    let energy: Vec<f64> = per_device.iter().map(|d| d.energy_j).collect();
                    let time: Vec<f64> = per_device.iter().map(|d| d.time_s()).collect();
                    let data: Vec<f64> =
                        scenario_t.devices.iter().map(|d| d.samples as f64).collect();
                    fedaecs_select(&candidates, &energy, &time, &data, *epsilon, *mu, *t_max_s)
                }
                RoundPolicy::Elastic { alpha } => elastic_select(&candidates, &per_device, *alpha),
            };

            let round_energy_j: f64 = participants.iter().map(|&i| per_device[i].energy_j).sum();
            let round_time_s = match &policy_spec.policy {
                RoundPolicy::Elastic { .. } => sequential_round_time(&participants, &per_device),
                _ => participants.iter().map(|&i| per_device[i].time_s()).fold(0.0_f64, f64::max),
            };

            let step = trainer.step(&participants);
            samples.push(RoundSample {
                participants: participants.len(),
                round_energy_j,
                round_time_s,
                global_loss: step.global_loss,
                test_accuracy: step.test_accuracy,
            });
        }
        out.push(samples);
    }
    Ok(out)
}

/// Round `t`'s scenario: the base realisation with every gain refaded by an independent
/// log-normal draw from the round's pinned stream. A zero `refade_db` freezes the channel
/// (and consumes no draws).
fn refade(scenario0: &Scenario, rounds: &RoundsSpec, seed: u64, round: u64) -> Scenario {
    let mut scenario = scenario0.clone();
    if rounds.refade_db > 0.0 {
        let mut rng = StdRng::seed_from_u64(rounds.channel_stream.derive_round(seed, round));
        let shadow = LogNormalShadowing::new(rounds.refade_db);
        for device in &mut scenario.devices {
            device.gain = ChannelGain::new(device.gain.value() * shadow.sample_linear(&mut rng));
        }
    }
    scenario
}

/// Per-device `(dropped, slow)` flags for one round, from a straggler stream independent
/// of the channel stream (re-deriving from `derive_stream_seed(seed)` decouples the two),
/// two draws per device in index order. Draws are consumed even when the probabilities
/// are zero so trajectories with and without stragglers share their channel realisations.
fn straggler_draws(rounds: &RoundsSpec, seed: u64, round: u64, n: usize) -> (Vec<bool>, Vec<bool>) {
    let straggler_seed = rounds.channel_stream.derive_round(derive_stream_seed(seed), round);
    let mut rng = StdRng::seed_from_u64(straggler_seed);
    let mut dropped = Vec::with_capacity(n);
    let mut slow = Vec::with_capacity(n);
    for _ in 0..n {
        dropped.push(rng.gen::<f64>() < rounds.straggler.dropout);
        slow.push(rng.gen::<f64>() < rounds.straggler.slow);
    }
    (dropped, slow)
}

/// Per-device round cost with the straggler slowdown folded in: a slow device's
/// computation time and energy scale by `slow_factor` (its upload is unaffected).
fn device_rounds(cost: &CostBreakdown, slow: &[bool], slow_factor: f64) -> Vec<DeviceRound> {
    cost.per_device
        .iter()
        .zip(slow)
        .map(|(d, &is_slow)| {
            let factor = if is_slow { slow_factor } else { 1.0 };
            DeviceRound {
                upload_time_s: d.upload_time_s,
                computation_time_s: d.computation_time_s * factor,
                energy_j: d.transmission_energy_j + d.computation_energy_j * factor,
            }
        })
        .collect()
}

/// The ELASTIC sequential-upload allocation: every device transmits at `p_max` over the
/// **full** band (uploads are serialized, not frequency-multiplexed) and computes at
/// `f_max`.
fn sequential_allocation(scenario: &Scenario) -> Allocation {
    let total_b = scenario.params.total_bandwidth.value();
    let powers = scenario.devices.iter().map(|d| d.p_max.value()).collect();
    let freqs = scenario.devices.iter().map(|d| d.f_max.value()).collect();
    let bandwidths = scenario.devices.iter().map(|_| total_b).collect();
    Allocation::new(powers, freqs, bandwidths)
}

/// FedAECS-style greedy feasible-subset selection.
///
/// Among `candidates` whose round time fits `t_max_s`, devices are admitted in ascending
/// energy-per-accuracy order (accuracy proxy `ε_i = ln(1 + μ·D_i)`) until the round
/// accuracy `Γ = ln(1 + Σ ε_i)` reaches `epsilon`; if the target is unreachable every
/// time-feasible device is selected (best effort). Returns indices in ascending order.
pub fn fedaecs_select(
    candidates: &[usize],
    energy_j: &[f64],
    time_s: &[f64],
    data_samples: &[f64],
    epsilon: f64,
    mu: f64,
    t_max_s: Option<f64>,
) -> Vec<usize> {
    let mut feasible: Vec<usize> =
        candidates.iter().copied().filter(|&i| !t_max_s.is_some_and(|t| time_s[i] > t)).collect();
    let eps = |i: usize| (1.0 + mu * data_samples[i]).ln();
    // Cheapest accuracy first: ascending energy per unit of ε, ties by device index.
    feasible.sort_by(|&a, &b| {
        let ka = energy_j[a] / eps(a);
        let kb = energy_j[b] / eps(b);
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut selected = Vec::new();
    let mut eps_sum = 0.0_f64;
    for &i in &feasible {
        if (1.0 + eps_sum).ln() >= epsilon {
            break;
        }
        selected.push(i);
        eps_sum += eps(i);
    }
    selected.sort_unstable();
    selected
}

/// ELASTIC-style selection: a device participates when its energy score
/// `α·(E_i + 1) − 1 ≤ 0`; if nobody qualifies the cheapest candidate uploads alone (the
/// round must still aggregate something when any device is alive).
fn elastic_select(candidates: &[usize], per_device: &[DeviceRound], alpha: f64) -> Vec<usize> {
    let selected: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| alpha * (per_device[i].energy_j + 1.0) - 1.0 <= 0.0)
        .collect();
    if !selected.is_empty() {
        return selected;
    }
    candidates
        .iter()
        .copied()
        .min_by(|&a, &b| {
            per_device[a]
                .energy_j
                .partial_cmp(&per_device[b].energy_j)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        })
        .into_iter()
        .collect()
}

/// The sequential-upload round length: participants upload one at a time (longest
/// computation first, so uploads overlap the stragglers' compute), each waiting
/// `t_wait_{j+1} = max(0, t_comp_j + t_wait_j + t_up_j − t_comp_{j+1})` for the channel.
fn sequential_round_time(participants: &[usize], per_device: &[DeviceRound]) -> f64 {
    if participants.is_empty() {
        return 0.0;
    }
    let mut order = participants.to_vec();
    order.sort_by(|&a, &b| {
        per_device[b]
            .computation_time_s
            .partial_cmp(&per_device[a].computation_time_s)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut wait = 0.0_f64;
    let mut finish = 0.0_f64;
    for (j, &i) in order.iter().enumerate() {
        let d = per_device[i];
        if j > 0 {
            let prev = per_device[order[j - 1]];
            wait = (prev.computation_time_s + wait + prev.upload_time_s - d.computation_time_s)
                .max(0.0);
        }
        finish = finish.max(d.computation_time_s + wait + d.upload_time_s);
    }
    finish
}

/// Folds the per-seed trajectories into the mean-per-round report, in seed order.
fn reduce(
    spec: &ExperimentSpec,
    rounds: &RoundsSpec,
    devices: usize,
    seeds: usize,
    trajectories: &[Vec<Vec<RoundSample>>],
) -> RoundSimRun {
    let t = rounds.rounds as usize;
    let inv = 1.0 / seeds as f64;
    let policies = rounds
        .policies
        .iter()
        .enumerate()
        .map(|(p, policy_spec)| {
            let mut trajectory = Vec::with_capacity(t);
            let mut cumulative_energy = 0.0;
            let mut cumulative_time = 0.0;
            let mut participant_rounds = 0.0;
            for round in 0..t {
                let mut participants = 0.0;
                let mut energy = 0.0;
                let mut time = 0.0;
                let mut loss = 0.0;
                let mut accuracy = 0.0;
                for seed_run in trajectories {
                    let s = &seed_run[p][round];
                    participants += s.participants as f64;
                    energy += s.round_energy_j;
                    time += s.round_time_s;
                    loss += s.global_loss;
                    accuracy += s.test_accuracy;
                }
                let round_energy_j = energy * inv;
                let round_time_s = time * inv;
                cumulative_energy += round_energy_j;
                cumulative_time += round_time_s;
                participant_rounds += participants * inv;
                trajectory.push(RoundRecord {
                    round: (round + 1) as u32,
                    participants: participants * inv,
                    round_energy_j,
                    round_time_s,
                    cumulative_energy_j: cumulative_energy,
                    cumulative_time_s: cumulative_time,
                    global_loss: loss * inv,
                    test_accuracy: accuracy * inv,
                });
            }
            let last = trajectory.last().copied();
            PolicyResult {
                label: policy_spec.display_label().to_string(),
                kind: policy_spec.policy.name().to_string(),
                trajectory,
                totals: PolicyTotals {
                    total_energy_j: last.map_or(0.0, |r| r.cumulative_energy_j),
                    total_time_s: last.map_or(0.0, |r| r.cumulative_time_s),
                    final_loss: last.map_or(0.0, |r| r.global_loss),
                    final_accuracy: last.map_or(0.0, |r| r.test_accuracy),
                    participation_rate: participant_rounds / (t as f64 * devices as f64),
                },
            }
        })
        .collect();
    RoundSimRun {
        spec_id: spec.id.clone(),
        report_id: rounds.report.id.clone(),
        title: rounds.report.title.clone(),
        devices,
        rounds: rounds.rounds,
        seeds,
        policies,
    }
}

impl RoundSimRun {
    /// The report as a JSON value (deterministic member order).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::uint(crate::spec::SCHEMA_VERSION)),
            ("kind", Json::Str("round_sim".to_string())),
            ("spec_id", Json::Str(self.spec_id.clone())),
            (
                "report",
                Json::obj([
                    ("id", Json::Str(self.report_id.clone())),
                    ("title", Json::Str(self.title.clone())),
                ]),
            ),
            ("devices", Json::uint(self.devices as u64)),
            ("rounds", Json::uint(u64::from(self.rounds))),
            ("seeds", Json::uint(self.seeds as u64)),
            (
                "policies",
                Json::Arr(
                    self.policies
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("label", Json::Str(p.label.clone())),
                                ("kind", Json::Str(p.kind.clone())),
                                (
                                    "trajectory",
                                    Json::Arr(
                                        p.trajectory
                                            .iter()
                                            .map(|r| {
                                                Json::obj([
                                                    ("round", Json::uint(u64::from(r.round))),
                                                    ("participants", Json::Num(r.participants)),
                                                    ("round_energy_j", Json::Num(r.round_energy_j)),
                                                    ("round_time_s", Json::Num(r.round_time_s)),
                                                    (
                                                        "cumulative_energy_j",
                                                        Json::Num(r.cumulative_energy_j),
                                                    ),
                                                    (
                                                        "cumulative_time_s",
                                                        Json::Num(r.cumulative_time_s),
                                                    ),
                                                    ("global_loss", Json::Num(r.global_loss)),
                                                    ("test_accuracy", Json::Num(r.test_accuracy)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "totals",
                                    Json::obj([
                                        ("total_energy_j", Json::Num(p.totals.total_energy_j)),
                                        ("total_time_s", Json::Num(p.totals.total_time_s)),
                                        ("final_loss", Json::Num(p.totals.final_loss)),
                                        ("final_accuracy", Json::Num(p.totals.final_accuracy)),
                                        (
                                            "participation_rate",
                                            Json::Num(p.totals.participation_rate),
                                        ),
                                    ]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The canonical serialized report (pretty-printed, trailing newline, byte-stable).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// A fixed-width text rendering: one summary table plus one trajectory block per
    /// policy.
    pub fn to_table_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} — {} (N={}, T={}, seeds={})",
            self.report_id, self.title, self.devices, self.rounds, self.seeds
        );
        let _ = writeln!(
            out,
            "{:<16} {:>14} {:>12} {:>10} {:>10} {:>8}",
            "policy", "energy (J)", "time (s)", "loss", "accuracy", "part."
        );
        for p in &self.policies {
            let _ = writeln!(
                out,
                "{:<16} {:>14.3} {:>12.3} {:>10.4} {:>10.4} {:>8.3}",
                p.label,
                p.totals.total_energy_j,
                p.totals.total_time_s,
                p.totals.final_loss,
                p.totals.final_accuracy,
                p.totals.participation_rate
            );
        }
        for p in &self.policies {
            let _ = writeln!(out, "\n[{}] per-round trajectory", p.label);
            let _ = writeln!(
                out,
                "{:>6} {:>8} {:>14} {:>12} {:>14} {:>12} {:>10} {:>10}",
                "round",
                "part.",
                "energy (J)",
                "time (s)",
                "cum. E (J)",
                "cum. t (s)",
                "loss",
                "acc."
            );
            for r in &p.trajectory {
                let _ = writeln!(
                    out,
                    "{:>6} {:>8.2} {:>14.4} {:>12.4} {:>14.3} {:>12.3} {:>10.4} {:>10.4}",
                    r.round,
                    r.participants,
                    r.round_energy_j,
                    r.round_time_s,
                    r.cumulative_energy_j,
                    r.cumulative_time_s,
                    r.global_loss,
                    r.test_accuracy
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedaecs_greedy_stops_at_the_accuracy_target() {
        // Four devices, equal data (ε_i identical), energies 1 < 2 < 3 < 4. With a target
        // met by two devices the two cheapest are selected.
        let candidates = [0, 1, 2, 3];
        let energy = [2.0, 1.0, 4.0, 3.0];
        let time = [1.0; 4];
        let data = [50.0; 4];
        let eps_one = (1.0 + 0.05 * 50.0_f64).ln();
        let target = (1.0 + 2.0 * eps_one).ln() * 0.999; // just under two devices' worth
        let picked = fedaecs_select(&candidates, &energy, &time, &data, target, 0.05, None);
        assert_eq!(picked, vec![0, 1]);
    }

    #[test]
    fn fedaecs_respects_the_time_cap() {
        let candidates = [0, 1, 2];
        let energy = [1.0, 2.0, 3.0];
        let time = [10.0, 1.0, 1.0];
        let data = [50.0; 3];
        // Device 0 is cheapest but too slow; an unreachable target selects every
        // time-feasible device.
        let picked = fedaecs_select(&candidates, &energy, &time, &data, 100.0, 0.05, Some(2.0));
        assert_eq!(picked, vec![1, 2]);
    }

    #[test]
    fn sequential_round_time_matches_the_recurrence_by_hand() {
        // Two devices: comp 4/1, upload 2/3. Order: device 0 (comp 4) first.
        // wait_1 = max(0, 4 + 0 + 2 − 1) = 5; finishes: 0 → 4+0+2 = 6, 1 → 1+5+3 = 9.
        let per_device = [
            DeviceRound { upload_time_s: 2.0, computation_time_s: 4.0, energy_j: 0.0 },
            DeviceRound { upload_time_s: 3.0, computation_time_s: 1.0, energy_j: 0.0 },
        ];
        let t = sequential_round_time(&[0, 1], &per_device);
        assert!((t - 9.0).abs() < 1e-12, "got {t}");
        // One device uploads with no waiting at all.
        let solo = sequential_round_time(&[1], &per_device);
        assert!((solo - 4.0).abs() < 1e-12, "got {solo}");
    }

    #[test]
    fn elastic_falls_back_to_the_cheapest_device() {
        let per_device = [
            DeviceRound { upload_time_s: 1.0, computation_time_s: 1.0, energy_j: 9.0 },
            DeviceRound { upload_time_s: 1.0, computation_time_s: 1.0, energy_j: 5.0 },
        ];
        // alpha = 1 admits only zero-energy devices → fallback to the min-energy one.
        assert_eq!(elastic_select(&[0, 1], &per_device, 1.0), vec![1]);
        // A permissive alpha admits both.
        assert_eq!(elastic_select(&[0, 1], &per_device, 0.05), vec![0, 1]);
        // All dropped → empty.
        assert_eq!(elastic_select(&[], &per_device, 0.05), Vec::<usize>::new());
    }
}
