//! # baselines
//!
//! Every comparison scheme used in the evaluation section (Section VII) of the ICDCS 2022
//! paper, scored through exactly the same `flsys` cost formulas as the proposed algorithm:
//!
//! * [`benchmark`] — the random **benchmark** of Figures 2 and 3: equal bandwidth split,
//!   maximum power with a random CPU frequency (power sweep) or maximum frequency with a
//!   random transmit power (frequency sweep).
//! * [`comm_only`] — **communication-only** optimization (Figure 7): frequencies pinned to
//!   the value that just meets the deadline under the initial uplink times, powers and
//!   bandwidths optimized.
//! * [`comp_only`] — **computation-only** optimization (Figure 7): powers and bandwidths
//!   pinned to `p_max` and `B/(2N)`, frequencies optimized.
//! * [`scheme1`] — **Scheme 1** (Figure 8): a reimplementation of the structure of Yang et
//!   al., *"Energy efficient federated learning over wireless communication networks"*
//!   (IEEE TWC 2021) — energy minimization under a hard deadline with a per-device time split
//!   fixed up front instead of re-optimized jointly with the bandwidth allocation.
//!
//! All baselines return a [`BaselineResult`] so the experiment harness can treat every scheme
//! uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmark;
pub mod comm_only;
pub mod comp_only;
pub mod result;
pub mod scheme1;
pub mod seeding;

pub use benchmark::BenchmarkAllocator;
pub use comm_only::CommOnlyAllocator;
pub use comp_only::CompOnlyAllocator;
pub use result::BaselineResult;
pub use scheme1::Scheme1Allocator;
pub use seeding::{derive_stream_seed, round_channel_seed, StreamDerivation};
