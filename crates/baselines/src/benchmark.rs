//! The random benchmark of Figures 2 and 3 (Section VII-B of the paper).
//!
//! > "1) When comparing energy consumption and completion time at different maximum
//! > transmission power limits, for the n-th device, randomly select the CPU frequency `f_n`
//! > from 0.1 to 2 GHz and set `p_n = p_max`, `B_n = B/N`. 2) When comparing at different
//! > maximum CPU frequencies, randomly select the transmission power `p_n` between 0 and
//! > 12 dBm and set `f_n = f_max`, `B_n = B/N`."

use crate::result::BaselineResult;
use fedopt_core::SolverWorkspace;
use flsys::{CostSummary, FlError, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The random benchmark allocator.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchmarkAllocator;

impl BenchmarkAllocator {
    /// Creates a benchmark allocator.
    pub fn new() -> Self {
        Self
    }

    /// Variant used when sweeping the maximum transmit power (Fig. 2): random frequency in
    /// `[0.1 GHz, f_max]` (never above the device's cap), `p = p_max`, equal bandwidth split.
    ///
    /// `seed` is the RNG stream for the random draw. When it originates from a figure
    /// cell's base (scenario) seed, derive it with [`crate::seeding::derive_stream_seed`]
    /// first so the draw stays decorrelated from the scenario realisation.
    ///
    /// # Errors
    ///
    /// Propagates [`FlError`] from the cost evaluation (cannot occur for scenarios built by
    /// `flsys`).
    pub fn random_frequency(
        &self,
        scenario: &Scenario,
        seed: u64,
    ) -> Result<BaselineResult, FlError> {
        // Delegate to the summary form so the draw sequence exists in exactly one place.
        let mut ws = SolverWorkspace::new();
        self.random_frequency_summary_with(scenario, seed, &mut ws)?;
        BaselineResult::evaluate(scenario, std::mem::take(&mut ws.allocation))
    }

    /// [`Self::random_frequency`] without materialising an [`flsys::Allocation`] or a
    /// [`BaselineResult`] — the sweep hot path, allocation-free in steady state. The drawn
    /// allocation is staged in [`SolverWorkspace::allocation`] and the returned
    /// [`CostSummary`] totals are bit-identical to the full result's (identical RNG stream,
    /// identical cost formulas).
    ///
    /// # Errors
    ///
    /// Same as [`Self::random_frequency`].
    pub fn random_frequency_summary_with(
        &self,
        scenario: &Scenario,
        seed: u64,
        ws: &mut SolverWorkspace,
    ) -> Result<CostSummary, FlError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = scenario.devices.len();
        let share = scenario.params.total_bandwidth.value() / n as f64;
        let a = &mut ws.allocation;
        a.powers_w.clear();
        a.powers_w.extend(scenario.devices.iter().map(|d| d.p_max.value()));
        a.frequencies_hz.clear();
        a.frequencies_hz.extend(scenario.devices.iter().map(|d| {
            let lo = 0.1e9_f64.min(d.f_max.value()).max(d.f_min.value());
            let hi = d.f_max.value();
            if hi > lo {
                rng.gen_range(lo..=hi)
            } else {
                hi
            }
        }));
        a.bandwidths_hz.clear();
        a.bandwidths_hz.resize(n, share);
        scenario.cost_summary(a)
    }

    /// [`Self::random_power`] without materialising an [`flsys::Allocation`] or a
    /// [`BaselineResult`] (see [`Self::random_frequency_summary_with`]).
    ///
    /// # Errors
    ///
    /// Same as [`Self::random_power`].
    pub fn random_power_summary_with(
        &self,
        scenario: &Scenario,
        seed: u64,
        ws: &mut SolverWorkspace,
    ) -> Result<CostSummary, FlError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = scenario.devices.len();
        let share = scenario.params.total_bandwidth.value() / n as f64;
        let a = &mut ws.allocation;
        a.powers_w.clear();
        a.powers_w.extend(scenario.devices.iter().map(|d| {
            let lo = d.p_min.value();
            let hi = d.p_max.value();
            if hi > lo {
                rng.gen_range(lo..=hi)
            } else {
                hi
            }
        }));
        a.frequencies_hz.clear();
        a.frequencies_hz.extend(scenario.devices.iter().map(|d| d.f_max.value()));
        a.bandwidths_hz.clear();
        a.bandwidths_hz.resize(n, share);
        scenario.cost_summary(a)
    }

    /// Variant used when sweeping the maximum CPU frequency (Fig. 3): random power in
    /// `[p_min, p_max]`, `f = f_max`, equal bandwidth split. See [`Self::random_frequency`]
    /// for the seed-derivation convention.
    ///
    /// # Errors
    ///
    /// Propagates [`FlError`] from the cost evaluation.
    pub fn random_power(&self, scenario: &Scenario, seed: u64) -> Result<BaselineResult, FlError> {
        // Delegate to the summary form so the draw sequence exists in exactly one place.
        let mut ws = SolverWorkspace::new();
        self.random_power_summary_with(scenario, seed, &mut ws)?;
        BaselineResult::evaluate(scenario, std::mem::take(&mut ws.allocation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsys::ScenarioBuilder;

    fn scenario() -> Scenario {
        ScenarioBuilder::paper_default().with_devices(10).build(5).unwrap()
    }

    #[test]
    fn random_frequency_is_feasible_and_reproducible() {
        let s = scenario();
        let b = BenchmarkAllocator::new();
        let r1 = b.random_frequency(&s, 7).unwrap();
        let r2 = b.random_frequency(&s, 7).unwrap();
        assert_eq!(r1.allocation, r2.allocation);
        assert!(r1.allocation.is_feasible(&s, 1e-9));
        for (dev, &p) in s.devices.iter().zip(&r1.allocation.powers_w) {
            assert_eq!(p, dev.p_max.value());
        }
        for &f in &r1.allocation.frequencies_hz {
            assert!((0.1e9..=2.0e9).contains(&f));
        }
    }

    #[test]
    fn random_power_is_feasible_and_uses_fmax() {
        let s = scenario();
        let b = BenchmarkAllocator::new();
        let r = b.random_power(&s, 9).unwrap();
        assert!(r.allocation.is_feasible(&s, 1e-9));
        for (dev, &f) in s.devices.iter().zip(&r.allocation.frequencies_hz) {
            assert_eq!(f, dev.f_max.value());
        }
        for (dev, &p) in s.devices.iter().zip(&r.allocation.powers_w) {
            assert!(p >= dev.p_min.value() && p <= dev.p_max.value());
        }
    }

    #[test]
    fn summary_variants_are_bit_identical_to_full_results() {
        let s = scenario();
        let b = BenchmarkAllocator::new();
        let mut ws = SolverWorkspace::new();
        for seed in [1u64, 7, 19] {
            let full = b.random_frequency(&s, seed).unwrap();
            let summary = b.random_frequency_summary_with(&s, seed, &mut ws).unwrap();
            assert_eq!(ws.allocation, full.allocation);
            assert_eq!(summary.total_energy_j, full.total_energy_j());
            assert_eq!(summary.total_time_s, full.total_time_s());

            let full = b.random_power(&s, seed).unwrap();
            let summary = b.random_power_summary_with(&s, seed, &mut ws).unwrap();
            assert_eq!(ws.allocation, full.allocation);
            assert_eq!(summary.total_energy_j, full.total_energy_j());
            assert_eq!(summary.total_time_s, full.total_time_s());
        }
    }

    #[test]
    fn different_seeds_give_different_draws() {
        let s = scenario();
        let b = BenchmarkAllocator::new();
        let r1 = b.random_frequency(&s, 1).unwrap();
        let r2 = b.random_frequency(&s, 2).unwrap();
        assert_ne!(r1.allocation.frequencies_hz, r2.allocation.frequencies_hz);
    }

    #[test]
    fn degenerate_boxes_fall_back_to_the_cap() {
        // A scenario whose f_max is below 0.1 GHz exercises the lo >= hi branch.
        let s = ScenarioBuilder::paper_default()
            .with_devices(3)
            .with_frequency_range(
                wireless::units::Hertz::new(5.0e7),
                wireless::units::Hertz::new(5.0e7),
            )
            .build(0)
            .unwrap();
        let r = BenchmarkAllocator::new().random_frequency(&s, 3).unwrap();
        for &f in &r.allocation.frequencies_hz {
            assert_eq!(f, 5.0e7);
        }
    }
}
