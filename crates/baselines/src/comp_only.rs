//! Computation-only optimization (Figure 7 of the paper).
//!
//! > "Each device's transmission power and bandwidth are fixed and we optimize only the CPU
//! > frequency. The transmission power and bandwidth of device n are set as `p_n = p_max` and
//! > `B_n = B/(2N)`."

use crate::result::BaselineResult;
use fedopt_core::{sp1, CoreError, SolverConfig, SolverWorkspace};
use flsys::{CostSummary, Scenario};

/// Deadline-constrained energy minimization that only touches the CPU frequencies.
#[derive(Debug, Clone, Default)]
pub struct CompOnlyAllocator {
    config: SolverConfig,
}

impl CompOnlyAllocator {
    /// Creates the allocator with the given solver configuration.
    pub fn new(config: SolverConfig) -> Self {
        Self { config }
    }

    /// Minimizes computation energy under the total completion-time deadline
    /// `total_deadline_s`, with `(p, B)` pinned to the paper's fixed values.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the scenario rejects the allocation shape.
    pub fn allocate(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
    ) -> Result<BaselineResult, CoreError> {
        self.allocate_with(scenario, total_deadline_s, &mut SolverWorkspace::new())
    }

    /// [`Self::allocate`] against a caller-owned [`SolverWorkspace`] — reusing the
    /// workspace's per-device buffers instead of allocating per call (bit-identical
    /// results; the workspace is pure scratch).
    ///
    /// # Errors
    ///
    /// Same as [`Self::allocate`].
    pub fn allocate_with(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
        ws: &mut SolverWorkspace,
    ) -> Result<BaselineResult, CoreError> {
        self.allocate_summary_with(scenario, total_deadline_s, ws)?;
        BaselineResult::evaluate(scenario, ws.allocation.clone()).map_err(CoreError::from)
    }

    /// [`Self::allocate_with`] without materialising a [`BaselineResult`] — the sweep hot
    /// path, allocation-free in steady state. The chosen allocation stays in
    /// [`SolverWorkspace::allocation`]; the returned [`CostSummary`] totals are
    /// bit-identical to the full result's.
    ///
    /// # Errors
    ///
    /// Same as [`Self::allocate`].
    pub fn allocate_summary_with(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
        ws: &mut SolverWorkspace,
    ) -> Result<CostSummary, CoreError> {
        let round_deadline = total_deadline_s / scenario.params.rg();

        ws.allocation.set_half_split_max(scenario);
        ws.allocation.rates_bps_into(scenario, &mut ws.rates_bps);
        ws.upload_times_from_rates(scenario);
        let SolverWorkspace { uploads_s, frequencies_hz, allocation, .. } = &mut *ws;

        // The cheapest frequencies that still meet the deadline given the fixed uplink times.
        sp1::frequencies_for_deadline_into(scenario, round_deadline, uploads_s, frequencies_hz);
        let _ = &self.config;

        allocation.frequencies_hz.copy_from_slice(frequencies_hz);
        allocation.project_feasible(scenario);
        scenario.cost_summary(allocation).map_err(CoreError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsys::ScenarioBuilder;

    #[test]
    fn allocation_is_feasible_and_uses_fixed_p_and_b() {
        let s = ScenarioBuilder::paper_default().with_devices(8).build(51).unwrap();
        let alloc = CompOnlyAllocator::new(SolverConfig::fast());
        let r = alloc.allocate(&s, 120.0).unwrap();
        assert!(r.allocation.is_feasible(&s, 1e-6));
        let half_share = s.params.total_bandwidth.value() / (2.0 * 8.0);
        for (dev, (&p, &b)) in
            s.devices.iter().zip(r.allocation.powers_w.iter().zip(&r.allocation.bandwidths_hz))
        {
            assert_eq!(p, dev.p_max.value());
            assert!((b - half_share).abs() < 1.0);
        }
    }

    #[test]
    fn roughly_meets_deadline_when_feasible() {
        let s = ScenarioBuilder::paper_default().with_devices(8).build(52).unwrap();
        let alloc = CompOnlyAllocator::new(SolverConfig::fast());
        let deadline = 130.0;
        let r = alloc.allocate(&s, deadline).unwrap();
        assert!(r.total_time_s() <= deadline * 1.1);
    }

    #[test]
    fn looser_deadline_reduces_computation_energy() {
        let s = ScenarioBuilder::paper_default().with_devices(8).build(53).unwrap();
        let alloc = CompOnlyAllocator::new(SolverConfig::fast());
        let tight = alloc.allocate(&s, 100.0).unwrap();
        let loose = alloc.allocate(&s, 150.0).unwrap();
        assert!(loose.cost.computation_energy_j <= tight.cost.computation_energy_j * (1.0 + 1e-9));
        // Transmission energy is identical because (p, B) are pinned.
        assert!((loose.cost.transmission_energy_j - tight.cost.transmission_energy_j).abs() < 1e-9);
    }
}
