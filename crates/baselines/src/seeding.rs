//! Seed-stream derivation shared by the baselines and the experiment harness.
//!
//! A figure cell is evaluated on a scenario drawn from a **base seed**, while schemes with
//! internal randomness (the random benchmark) must draw from an *independent* stream — if
//! they reused the base seed, the "random" frequency/power draws would be correlated with
//! the device placement and channel realisations generated from the same seed. Before this
//! helper existed the magic constant was inlined at every call site.

/// Derives the RNG stream seed for a scheme's internal randomness from the cell's base
/// (scenario) seed.
///
/// The constant is the 32-bit golden-ratio mixing constant `⌊2³² / φ⌋ = 0x9e37_79b9`; the
/// XOR keeps the mapping bijective (so distinct base seeds keep distinct stream seeds)
/// while decorrelating the stream from the scenario draw. The exact value is part of the
/// reproduction contract: changing it changes every benchmark column of Figures 2 and 3.
#[must_use]
pub fn derive_stream_seed(base_seed: u64) -> u64 {
    base_seed ^ 0x9e37_79b9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_historical_inline_constant() {
        for seed in [0u64, 1, 11, 12, 201, u64::MAX] {
            assert_eq!(derive_stream_seed(seed), seed ^ 0x9e37_79b9);
        }
    }

    #[test]
    fn is_bijective_and_decorrelated_from_base() {
        let seeds: Vec<u64> = (0..64).collect();
        let derived: Vec<u64> = seeds.iter().map(|&s| derive_stream_seed(s)).collect();
        let mut unique = derived.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "stream seeds must stay distinct");
        for (s, d) in seeds.iter().zip(&derived) {
            assert_ne!(s, d, "stream must differ from the scenario stream");
        }
    }
}
