//! Seed-stream derivation shared by the baselines and the experiment harness.
//!
//! A figure cell is evaluated on a scenario drawn from a **base seed**, while schemes with
//! internal randomness (the random benchmark) must draw from an *independent* stream — if
//! they reused the base seed, the "random" frequency/power draws would be correlated with
//! the device placement and channel realisations generated from the same seed. Before this
//! helper existed the magic constant was inlined at every call site.
//!
//! The derivation is **spec-addressable**: every derivation rule is a named
//! [`StreamDerivation`] variant whose [`StreamDerivation::name`] is stable wire format, so
//! a serialized experiment description (the `experiments` crate's `ExperimentSpec`) can
//! pin the exact rule it was produced with and a replay on another host can refuse to run
//! under a different one.

/// A named rule deriving the RNG stream seed for a scheme's internal randomness from a
/// cell's base (scenario) seed.
///
/// The enum is closed on purpose: each variant is a reproduction contract (changing a
/// rule changes every benchmark column of Figures 2 and 3), so new derivations must be
/// added as new named variants, never by mutating an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamDerivation {
    /// XOR with the 32-bit golden-ratio mixing constant `⌊2³² / φ⌋ = 0x9e37_79b9` — the
    /// historical (and default) rule. The XOR keeps the mapping bijective (distinct base
    /// seeds keep distinct stream seeds) while decorrelating the stream from the scenario
    /// draw.
    #[default]
    XorGolden32,
    /// FNV-1a hash of the base seed and a round index — the per-round channel-fading
    /// stream of the round simulator. Round `t`'s seed is a **pure function of
    /// `(base_seed, t)`**: a simulation may jump straight to round `t` (or replay rounds
    /// out of order, or skip rounds entirely) and still redraw exactly the channel that a
    /// full history walk would have seen. Use [`StreamDerivation::derive_round`]; the
    /// round-free [`StreamDerivation::derive`] is the `round = 0` stream.
    RoundChannelFnv,
}

/// FNV-1a (64-bit) over the little-endian bytes of `base_seed` followed by `round` —
/// the [`StreamDerivation::RoundChannelFnv`] mixing function.
const fn fnv1a_seed_round(base_seed: u64, round: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let seed_bytes = base_seed.to_le_bytes();
    let round_bytes = round.to_le_bytes();
    let mut i = 0;
    while i < 8 {
        hash = (hash ^ seed_bytes[i] as u64).wrapping_mul(PRIME);
        i += 1;
    }
    let mut i = 0;
    while i < 8 {
        hash = (hash ^ round_bytes[i] as u64).wrapping_mul(PRIME);
        i += 1;
    }
    hash
}

impl StreamDerivation {
    /// The stable wire name of this rule, as serialized in experiment specs.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::XorGolden32 => "xor-golden32",
            Self::RoundChannelFnv => "round-channel-fnv",
        }
    }

    /// Looks a rule up by its wire name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "xor-golden32" => Some(Self::XorGolden32),
            "round-channel-fnv" => Some(Self::RoundChannelFnv),
            _ => None,
        }
    }

    /// Derives the stream seed for a base (scenario) seed under this rule.
    ///
    /// For the round-indexed [`StreamDerivation::RoundChannelFnv`] rule this is the
    /// `round = 0` stream; use [`StreamDerivation::derive_round`] for later rounds.
    #[must_use]
    pub const fn derive(self, base_seed: u64) -> u64 {
        match self {
            Self::XorGolden32 => base_seed ^ 0x9e37_79b9,
            Self::RoundChannelFnv => fnv1a_seed_round(base_seed, 0),
        }
    }

    /// Derives the stream seed for global round `round` of a base (scenario) seed.
    ///
    /// The result depends only on `(self, base_seed, round)` — never on which other
    /// rounds were derived before — so per-round redraws are replayable from any point.
    /// [`StreamDerivation::XorGolden32`] has no round dimension and ignores `round`
    /// (every round maps to the one historical stream).
    #[must_use]
    pub const fn derive_round(self, base_seed: u64, round: u64) -> u64 {
        match self {
            Self::XorGolden32 => base_seed ^ 0x9e37_79b9,
            Self::RoundChannelFnv => fnv1a_seed_round(base_seed, round),
        }
    }
}

/// Derives the RNG stream seed for a scheme's internal randomness from the cell's base
/// (scenario) seed, under the default [`StreamDerivation::XorGolden32`] rule.
///
/// The exact value is part of the reproduction contract: changing it changes every
/// benchmark column of Figures 2 and 3.
#[must_use]
pub fn derive_stream_seed(base_seed: u64) -> u64 {
    StreamDerivation::XorGolden32.derive(base_seed)
}

/// Derives the channel-fading stream seed for global round `round` of a cell's base
/// (scenario) seed, under the [`StreamDerivation::RoundChannelFnv`] rule.
///
/// A pure function of `(base_seed, round)`: the round simulator can redraw round `t`'s
/// channel without having simulated rounds `0..t-1` and get bit-identical draws.
#[must_use]
pub fn round_channel_seed(base_seed: u64, round: u64) -> u64 {
    StreamDerivation::RoundChannelFnv.derive_round(base_seed, round)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_historical_inline_constant() {
        for seed in [0u64, 1, 11, 12, 201, u64::MAX] {
            assert_eq!(derive_stream_seed(seed), seed ^ 0x9e37_79b9);
            assert_eq!(StreamDerivation::XorGolden32.derive(seed), seed ^ 0x9e37_79b9);
        }
    }

    #[test]
    fn is_bijective_and_decorrelated_from_base() {
        let seeds: Vec<u64> = (0..64).collect();
        let derived: Vec<u64> = seeds.iter().map(|&s| derive_stream_seed(s)).collect();
        let mut unique = derived.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "stream seeds must stay distinct");
        for (s, d) in seeds.iter().zip(&derived) {
            assert_ne!(s, d, "stream must differ from the scenario stream");
        }
    }

    #[test]
    fn wire_names_round_trip() {
        for rule in [StreamDerivation::XorGolden32, StreamDerivation::RoundChannelFnv] {
            assert_eq!(StreamDerivation::from_name(rule.name()), Some(rule));
        }
        assert_eq!(StreamDerivation::from_name("never-a-rule"), None);
        assert_eq!(StreamDerivation::default(), StreamDerivation::XorGolden32);
    }

    #[test]
    fn round_channel_seeds_are_distinct_across_rounds_and_bases() {
        let mut seen = std::collections::BTreeSet::new();
        for base in [0u64, 1, 7, 42, 1 << 40, u64::MAX] {
            for round in 0..64u64 {
                assert!(
                    seen.insert(round_channel_seed(base, round)),
                    "collision at base={base} round={round}"
                );
            }
        }
    }

    #[test]
    fn round_channel_draws_are_independent_of_simulated_history() {
        use rand::{rngs::StdRng, Rng, SeedableRng};

        // Draw one fading value per device the way the round simulator does: a fresh RNG
        // seeded from `round_channel_seed(base, t)` for each round. The "full history"
        // walk simulates rounds 0..=t in order; the "skip" walk jumps straight to round
        // t. Round t's draws must be bit-identical either way — i.e. the redraw depends
        // only on (base_seed, t), never on whether earlier rounds ran.
        let base_seed = 11u64;
        let devices = 8;
        let draw_round = |round: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(round_channel_seed(base_seed, round));
            (0..devices).map(|_| rng.gen::<u64>()).collect()
        };

        let target = 13u64;
        let mut history_walk = Vec::new();
        for round in 0..=target {
            history_walk = draw_round(round);
        }
        let skipped = draw_round(target);
        assert_eq!(history_walk, skipped, "round {target} draw must not depend on history");

        // And consecutive rounds must actually redraw (distinct streams).
        assert_ne!(draw_round(0), draw_round(1));
    }

    #[test]
    fn derive_matches_derive_round_zero() {
        for rule in [StreamDerivation::XorGolden32, StreamDerivation::RoundChannelFnv] {
            for base in [0u64, 3, 99, u64::MAX] {
                assert_eq!(rule.derive(base), rule.derive_round(base, 0));
            }
        }
        // The legacy rule has no round dimension.
        assert_eq!(
            StreamDerivation::XorGolden32.derive_round(5, 0),
            StreamDerivation::XorGolden32.derive_round(5, 9),
        );
    }
}
