//! Seed-stream derivation shared by the baselines and the experiment harness.
//!
//! A figure cell is evaluated on a scenario drawn from a **base seed**, while schemes with
//! internal randomness (the random benchmark) must draw from an *independent* stream — if
//! they reused the base seed, the "random" frequency/power draws would be correlated with
//! the device placement and channel realisations generated from the same seed. Before this
//! helper existed the magic constant was inlined at every call site.
//!
//! The derivation is **spec-addressable**: every derivation rule is a named
//! [`StreamDerivation`] variant whose [`StreamDerivation::name`] is stable wire format, so
//! a serialized experiment description (the `experiments` crate's `ExperimentSpec`) can
//! pin the exact rule it was produced with and a replay on another host can refuse to run
//! under a different one.

/// A named rule deriving the RNG stream seed for a scheme's internal randomness from a
/// cell's base (scenario) seed.
///
/// The enum is closed on purpose: each variant is a reproduction contract (changing a
/// rule changes every benchmark column of Figures 2 and 3), so new derivations must be
/// added as new named variants, never by mutating an existing one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamDerivation {
    /// XOR with the 32-bit golden-ratio mixing constant `⌊2³² / φ⌋ = 0x9e37_79b9` — the
    /// historical (and default) rule. The XOR keeps the mapping bijective (distinct base
    /// seeds keep distinct stream seeds) while decorrelating the stream from the scenario
    /// draw.
    #[default]
    XorGolden32,
}

impl StreamDerivation {
    /// The stable wire name of this rule, as serialized in experiment specs.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::XorGolden32 => "xor-golden32",
        }
    }

    /// Looks a rule up by its wire name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "xor-golden32" => Some(Self::XorGolden32),
            _ => None,
        }
    }

    /// Derives the stream seed for a base (scenario) seed under this rule.
    #[must_use]
    pub const fn derive(self, base_seed: u64) -> u64 {
        match self {
            Self::XorGolden32 => base_seed ^ 0x9e37_79b9,
        }
    }
}

/// Derives the RNG stream seed for a scheme's internal randomness from the cell's base
/// (scenario) seed, under the default [`StreamDerivation::XorGolden32`] rule.
///
/// The exact value is part of the reproduction contract: changing it changes every
/// benchmark column of Figures 2 and 3.
#[must_use]
pub fn derive_stream_seed(base_seed: u64) -> u64 {
    StreamDerivation::XorGolden32.derive(base_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_historical_inline_constant() {
        for seed in [0u64, 1, 11, 12, 201, u64::MAX] {
            assert_eq!(derive_stream_seed(seed), seed ^ 0x9e37_79b9);
            assert_eq!(StreamDerivation::XorGolden32.derive(seed), seed ^ 0x9e37_79b9);
        }
    }

    #[test]
    fn is_bijective_and_decorrelated_from_base() {
        let seeds: Vec<u64> = (0..64).collect();
        let derived: Vec<u64> = seeds.iter().map(|&s| derive_stream_seed(s)).collect();
        let mut unique = derived.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "stream seeds must stay distinct");
        for (s, d) in seeds.iter().zip(&derived) {
            assert_ne!(s, d, "stream must differ from the scenario stream");
        }
    }

    #[test]
    fn wire_names_round_trip() {
        let rule = StreamDerivation::XorGolden32;
        assert_eq!(StreamDerivation::from_name(rule.name()), Some(rule));
        assert_eq!(StreamDerivation::from_name("never-a-rule"), None);
        assert_eq!(StreamDerivation::default(), rule);
    }
}
