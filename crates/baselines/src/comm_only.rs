//! Communication-only optimization (Figure 7 of the paper).
//!
//! > "Each device's computation frequency is set as a fixed value. We optimize only the
//! > transmission power and bandwidth allocated to each device. To guarantee there is a
//! > feasible solution, we set the fixed frequency value for each device as
//! > `R_g R_l c_n D_n / (T − R_g·max(d_n/r_n))`, which is derived from constraint (9a), and
//! > `r_n` is calculated from the initial bandwidth and transmission power."

use crate::result::BaselineResult;
use fedopt_core::sp2;
use fedopt_core::{CoreError, SolverConfig, SolverWorkspace};
use flsys::{CostSummary, Scenario, Weights};

/// Deadline-constrained energy minimization that only touches `(p, B)`.
#[derive(Debug, Clone, Default)]
pub struct CommOnlyAllocator {
    config: SolverConfig,
}

impl CommOnlyAllocator {
    /// Creates the allocator with the given solver configuration.
    pub fn new(config: SolverConfig) -> Self {
        Self { config }
    }

    /// Minimizes transmission energy under the total completion-time deadline
    /// `total_deadline_s`, with every device's CPU frequency pinned to the paper's fixed
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the inner Subproblem-2 solver fails or the scenario rejects
    /// the allocation.
    pub fn allocate(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
    ) -> Result<BaselineResult, CoreError> {
        self.allocate_with(scenario, total_deadline_s, &mut SolverWorkspace::new())
    }

    /// [`Self::allocate`] against a caller-owned [`SolverWorkspace`] — reusing the
    /// workspace's per-device buffers instead of allocating per call (bit-identical
    /// results; the workspace is pure scratch).
    ///
    /// # Errors
    ///
    /// Same as [`Self::allocate`].
    pub fn allocate_with(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
        ws: &mut SolverWorkspace,
    ) -> Result<BaselineResult, CoreError> {
        self.allocate_summary_with(scenario, total_deadline_s, ws)?;
        BaselineResult::evaluate(scenario, ws.allocation.clone()).map_err(CoreError::from)
    }

    /// [`Self::allocate_with`] without materialising a [`BaselineResult`] — the sweep hot
    /// path, allocation-free in steady state. The chosen allocation stays in
    /// [`SolverWorkspace::allocation`]; the returned [`CostSummary`] totals are
    /// bit-identical to the full result's.
    ///
    /// # Errors
    ///
    /// Same as [`Self::allocate`].
    pub fn allocate_summary_with(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
        ws: &mut SolverWorkspace,
    ) -> Result<CostSummary, CoreError> {
        let params = &scenario.params;
        let round_deadline = total_deadline_s / params.rg();
        let rl = params.rl();

        // Initial (p, B): maximum power, half-band equal split (the paper's initialization).
        ws.allocation.set_half_split_max(scenario);
        ws.allocation.rates_bps_into(scenario, &mut ws.rates_bps);
        ws.upload_times_from_rates(scenario);
        let SolverWorkspace {
            uploads_s, r_min_bps, frequencies_hz, sp2, allocation, counters, ..
        } = &mut *ws;
        let max_upload = uploads_s.iter().cloned().fold(0.0, f64::max);

        // Fixed frequency from constraint (9a), shared compute budget = deadline − slowest upload.
        let compute_budget = (round_deadline - max_upload).max(1e-6);
        frequencies_hz.clear();
        frequencies_hz.extend(
            scenario
                .devices
                .iter()
                .map(|d| d.clamp_frequency(rl * d.cycles_per_local_iteration() / compute_budget)),
        );

        // Optimize (p, B) for minimum transmission energy under the per-device rate floors
        // implied by the deadline and the fixed frequencies.
        r_min_bps.clear();
        r_min_bps.extend(scenario.devices.iter().enumerate().map(|(i, d)| {
            let t_cmp = rl * d.cycles_per_local_iteration() / frequencies_hz[i];
            let budget = (round_deadline - t_cmp).max(1e-6);
            d.upload_bits / budget
        }));
        sp2.stage_start(&allocation.powers_w, &allocation.bandwidths_hz);
        let sp2_sol =
            sp2::solve_in(scenario, Weights::energy_only(), r_min_bps, &self.config, sp2)?;
        counters.record_sp2(&sp2_sol);

        allocation.powers_w.copy_from_slice(&sp2.solution().powers_w);
        allocation.bandwidths_hz.copy_from_slice(&sp2.solution().bandwidths_hz);
        allocation.frequencies_hz.copy_from_slice(frequencies_hz);
        allocation.project_feasible(scenario);
        scenario.cost_summary(allocation).map_err(CoreError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsys::ScenarioBuilder;

    #[test]
    fn allocation_is_feasible_and_roughly_meets_deadline() {
        let s = ScenarioBuilder::paper_default().with_devices(10).build(41).unwrap();
        let alloc = CommOnlyAllocator::new(SolverConfig::fast());
        let deadline = 120.0;
        let r = alloc.allocate(&s, deadline).unwrap();
        assert!(r.allocation.is_feasible(&s, 1e-5));
        assert!(
            r.total_time_s() <= deadline * 1.1,
            "time {} vs deadline {deadline}",
            r.total_time_s()
        );
    }

    #[test]
    fn tighter_deadline_never_reduces_energy() {
        let s = ScenarioBuilder::paper_default().with_devices(10).build(42).unwrap();
        let alloc = CommOnlyAllocator::new(SolverConfig::fast());
        let tight = alloc.allocate(&s, 100.0).unwrap();
        let loose = alloc.allocate(&s, 150.0).unwrap();
        assert!(loose.total_energy_j() <= tight.total_energy_j() * 1.05);
    }

    #[test]
    fn frequencies_are_fixed_by_the_deadline_not_optimized() {
        // All devices share the same compute budget, so frequency ratios track c_n·D_n.
        let s = ScenarioBuilder::paper_default().with_devices(6).build(43).unwrap();
        let alloc = CommOnlyAllocator::new(SolverConfig::fast());
        let r = alloc.allocate(&s, 130.0).unwrap();
        let ratios: Vec<f64> = s
            .devices
            .iter()
            .zip(&r.allocation.frequencies_hz)
            .map(|(d, &f)| f / d.cycles_per_local_iteration())
            .collect();
        let first = ratios[0];
        for rho in &ratios {
            assert!((rho - first).abs() / first < 1e-6, "ratios differ: {ratios:?}");
        }
    }
}
