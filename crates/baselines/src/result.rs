//! Common result type for every baseline.

use flsys::{Allocation, CostBreakdown, FlError, Scenario};

/// An allocation produced by a baseline scheme together with its evaluated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// The allocation the baseline chose.
    pub allocation: Allocation,
    /// Its cost under the shared `flsys` formulas.
    pub cost: CostBreakdown,
}

impl BaselineResult {
    /// Evaluates an allocation against a scenario and wraps both.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`FlError`] if the allocation does not match the scenario.
    pub fn evaluate(scenario: &Scenario, allocation: Allocation) -> Result<Self, FlError> {
        let cost = scenario.cost(&allocation)?;
        Ok(Self { allocation, cost })
    }

    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.cost.total_energy_j
    }

    /// Total completion time in seconds.
    pub fn total_time_s(&self) -> f64 {
        self.cost.total_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsys::ScenarioBuilder;

    #[test]
    fn evaluate_wraps_cost() {
        let s = ScenarioBuilder::paper_default().with_devices(4).build(0).unwrap();
        let a = Allocation::equal_split_max(&s);
        let r = BaselineResult::evaluate(&s, a.clone()).unwrap();
        assert_eq!(r.allocation, a);
        assert!(r.total_energy_j() > 0.0);
        assert!(r.total_time_s() > 0.0);
    }

    #[test]
    fn mismatched_allocation_is_error() {
        let s = ScenarioBuilder::paper_default().with_devices(4).build(0).unwrap();
        let bad = Allocation::new(vec![0.01], vec![1e9], vec![1e6]);
        assert!(BaselineResult::evaluate(&s, bad).is_err());
    }
}
