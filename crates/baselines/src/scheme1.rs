//! Scheme 1 — the state-of-the-art comparison of Figure 8.
//!
//! The paper compares against Algorithm 3 of Yang et al., *"Energy efficient federated
//! learning over wireless communication networks"* (IEEE TWC 2021), which minimizes total
//! energy subject to a hard completion-time deadline. That solver is not publicly available
//! in Rust, so this module reimplements its *structure*:
//!
//! 1. start from the paper's initialization `p_n = p_max`, `B_n = B/(2N)`;
//! 2. split every device's per-round deadline between computation and upload **once**, based
//!    on the initial uplink times;
//! 3. pick the cheapest CPU frequency that fits the computation share;
//! 4. minimize transmission energy over `(p, B)` under the rate floors implied by the upload
//!    share.
//!
//! The essential difference from the proposed algorithm (which Figure 8 highlights) is that
//! the compute/upload time split is *not* re-optimized jointly with the bandwidth
//! allocation: when the deadline is tight, the initial equal-bandwidth split misjudges the
//! upload times and the scheme pays for it in energy — exactly the regime where the paper
//! reports the largest gap.

use crate::result::BaselineResult;
use fedopt_core::sp2;
use fedopt_core::{CoreError, SolverConfig, SolverWorkspace};
use flsys::{CostSummary, Scenario, Weights};

/// Reimplementation of the structure of Yang et al.'s deadline-constrained energy minimizer.
#[derive(Debug, Clone, Default)]
pub struct Scheme1Allocator {
    config: SolverConfig,
}

impl Scheme1Allocator {
    /// Creates the allocator with the given solver configuration.
    pub fn new(config: SolverConfig) -> Self {
        Self { config }
    }

    /// Minimizes total energy under the total completion-time deadline `total_deadline_s`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if the inner Subproblem-2 solver fails or the scenario rejects
    /// the allocation.
    pub fn allocate(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
    ) -> Result<BaselineResult, CoreError> {
        self.allocate_with(scenario, total_deadline_s, &mut SolverWorkspace::new())
    }

    /// [`Self::allocate`] against a caller-owned [`SolverWorkspace`] — reusing the
    /// workspace's per-device buffers instead of allocating per call (bit-identical
    /// results; the workspace is pure scratch).
    ///
    /// # Errors
    ///
    /// Same as [`Self::allocate`].
    pub fn allocate_with(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
        ws: &mut SolverWorkspace,
    ) -> Result<BaselineResult, CoreError> {
        self.allocate_summary_with(scenario, total_deadline_s, ws)?;
        BaselineResult::evaluate(scenario, ws.allocation.clone()).map_err(CoreError::from)
    }

    /// [`Self::allocate_with`] without materialising a [`BaselineResult`] — the sweep hot
    /// path, allocation-free in steady state. The chosen allocation stays in
    /// [`SolverWorkspace::allocation`]; the returned [`CostSummary`] totals are
    /// bit-identical to the full result's.
    ///
    /// # Errors
    ///
    /// Same as [`Self::allocate`].
    pub fn allocate_summary_with(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
        ws: &mut SolverWorkspace,
    ) -> Result<CostSummary, CoreError> {
        let params = &scenario.params;
        let round_deadline = total_deadline_s / params.rg();
        let rl = params.rl();

        // Step 1: the paper's initialization.
        ws.allocation.set_half_split_max(scenario);
        ws.allocation.rates_bps_into(scenario, &mut ws.rates_bps);
        ws.upload_times_from_rates(scenario);
        let SolverWorkspace {
            uploads_s, r_min_bps, frequencies_hz, sp2, allocation, counters, ..
        } = &mut *ws;

        // Steps 2–3: fix each device's compute/upload split from the initial uplink time and
        // choose the cheapest frequency that fits the compute share.
        frequencies_hz.clear();
        frequencies_hz.extend(scenario.devices.iter().zip(uploads_s.iter()).map(|(d, &t_up)| {
            let compute_budget = (round_deadline - t_up).max(1e-6);
            d.clamp_frequency(rl * d.cycles_per_local_iteration() / compute_budget)
        }));

        // Step 4: transmission-energy minimization under the upload share left by that split.
        r_min_bps.clear();
        r_min_bps.extend(scenario.devices.iter().enumerate().map(|(i, d)| {
            let t_cmp = rl * d.cycles_per_local_iteration() / frequencies_hz[i];
            let budget = (round_deadline - t_cmp).max(1e-6);
            d.upload_bits / budget
        }));
        sp2.stage_start(&allocation.powers_w, &allocation.bandwidths_hz);
        let sp2_sol =
            sp2::solve_in(scenario, Weights::energy_only(), r_min_bps, &self.config, sp2)?;
        counters.record_sp2(&sp2_sol);

        allocation.powers_w.copy_from_slice(&sp2.solution().powers_w);
        allocation.bandwidths_hz.copy_from_slice(&sp2.solution().bandwidths_hz);
        allocation.frequencies_hz.copy_from_slice(frequencies_hz);
        allocation.project_feasible(scenario);
        scenario.cost_summary(allocation).map_err(CoreError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedopt_core::JointOptimizer;
    use flsys::ScenarioBuilder;

    fn scenario(seed: u64) -> Scenario {
        ScenarioBuilder::paper_default().with_devices(10).build(seed).unwrap()
    }

    #[test]
    fn allocation_is_feasible_and_roughly_meets_deadline() {
        let s = scenario(61);
        let alloc = Scheme1Allocator::new(SolverConfig::fast());
        let deadline = 100.0;
        let r = alloc.allocate(&s, deadline).unwrap();
        assert!(r.allocation.is_feasible(&s, 1e-5));
        assert!(r.total_time_s() <= deadline * 1.1, "time {} vs {deadline}", r.total_time_s());
    }

    #[test]
    fn tighter_deadline_costs_more_energy() {
        let s = scenario(62);
        let alloc = Scheme1Allocator::new(SolverConfig::fast());
        let tight = alloc.allocate(&s, 90.0).unwrap();
        let loose = alloc.allocate(&s, 150.0).unwrap();
        assert!(tight.total_energy_j() >= loose.total_energy_j() * (1.0 - 0.02));
    }

    #[test]
    fn proposed_algorithm_is_no_worse_than_scheme1() {
        // The headline claim of Figure 8.
        let s = scenario(63);
        let cfg = SolverConfig::fast();
        let scheme1 = Scheme1Allocator::new(cfg);
        let proposed = JointOptimizer::new(cfg);
        for deadline in [90.0, 110.0, 150.0] {
            let s1 = scheme1.allocate(&s, deadline).unwrap();
            let ours = proposed.solve_with_deadline(&s, deadline).unwrap();
            assert!(
                ours.total_energy_j <= s1.total_energy_j() * 1.02,
                "deadline {deadline}: proposed {} vs scheme1 {}",
                ours.total_energy_j,
                s1.total_energy_j()
            );
        }
    }
}
