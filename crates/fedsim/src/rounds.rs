//! Per-round federated training over **participant subsets**.
//!
//! [`crate::fedavg`] runs the paper's full-participation FedAvg loop: every device trains
//! every round. The round simulator needs the generalization every piece of retrieved
//! related work assumes — per round, a *policy* picks a participant subset (stragglers
//! drop out, FedAECS selects an accuracy-feasible subset, ELASTIC selects for sequential
//! upload), only those devices train, and the aggregate is weighted over the participants
//! alone. [`RoundTrainer`] is that stepper: it owns the evolving global model and exposes
//! one [`RoundTrainer::step`] per global round, leaving scheduling, channel redraws and
//! cost accounting to the caller (the `experiments::rounds` subsystem).
//!
//! Every step is a pure fold over `(global model, participant set)` in device-index
//! order — no interior randomness — so a trajectory is bit-identical for a given dataset
//! and participant schedule regardless of thread count or replay history.

use crate::data::FederatedDataset;
use crate::model::LogisticModel;

/// Loss/accuracy outcome of one training round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStep {
    /// Training loss of the (post-aggregation) global model, weighted `D_n / D` over
    /// **all** devices — participation changes who trains, not whose loss counts.
    pub global_loss: f64,
    /// Accuracy of the global model on the held-out test set.
    pub test_accuracy: f64,
    /// Number of devices that trained this round.
    pub participants: usize,
}

/// Steps a global logistic model through federated rounds with per-round participation.
#[derive(Debug, Clone)]
pub struct RoundTrainer<'a> {
    dataset: &'a FederatedDataset,
    global: LogisticModel,
    learning_rate: f64,
    local_iterations: u32,
    sample_weights: Vec<f64>,
    total_samples: f64,
}

impl<'a> RoundTrainer<'a> {
    /// Creates a trainer starting from the all-zeros model, matching [`crate::fedavg`].
    #[must_use]
    pub fn new(dataset: &'a FederatedDataset, learning_rate: f64, local_iterations: u32) -> Self {
        let sample_weights: Vec<f64> = dataset.devices.iter().map(|d| d.len() as f64).collect();
        let total_samples: f64 = sample_weights.iter().sum();
        Self {
            dataset,
            global: LogisticModel::zeros(dataset.dimension),
            learning_rate,
            local_iterations,
            sample_weights,
            total_samples,
        }
    }

    /// The current global model.
    #[must_use]
    pub fn model(&self) -> &LogisticModel {
        &self.global
    }

    /// The number of devices in the federation.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.dataset.devices.len()
    }

    /// Evaluates the current global model without training: `(global_loss, test_accuracy)`
    /// with the same weighting as [`RoundTrainer::step`].
    #[must_use]
    pub fn evaluate(&self) -> (f64, f64) {
        let global_loss: f64 = self
            .dataset
            .devices
            .iter()
            .zip(&self.sample_weights)
            .map(|(d, &w)| w / self.total_samples * self.global.loss(d))
            .sum();
        (global_loss, self.global.accuracy(&self.dataset.test))
    }

    /// Runs one global round over `participants` (device indices, processed in the order
    /// given — pass them sorted for a canonical trajectory).
    ///
    /// Each participant trains `local_iterations` SGD passes from the broadcast global
    /// model; the new global model is the `D_n`-weighted average **over the participants**
    /// (standard partial-participation FedAvg). An empty participant set leaves the model
    /// unchanged — the round still evaluates, modelling a round lost to stragglers.
    ///
    /// # Panics
    ///
    /// Panics if a participant index is out of range.
    pub fn step(&mut self, participants: &[usize]) -> TrainStep {
        if !participants.is_empty() {
            let mut locals = Vec::with_capacity(participants.len());
            let mut weights = Vec::with_capacity(participants.len());
            for &idx in participants {
                let data = &self.dataset.devices[idx];
                let mut local = self.global.clone();
                local.train_local(data, self.learning_rate, self.local_iterations);
                locals.push(local);
                weights.push(self.sample_weights[idx]);
            }
            self.global = LogisticModel::weighted_average(&locals, &weights)
                .expect("participants are non-empty with positive sample weights");
        }
        let (global_loss, test_accuracy) = self.evaluate();
        TrainStep { global_loss, test_accuracy, participants: participants.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticConfig;

    fn dataset() -> FederatedDataset {
        FederatedDataset::synthetic(
            &SyntheticConfig::default().with_devices(5).with_samples_per_device(80),
            3,
        )
    }

    #[test]
    fn full_participation_matches_fedavg_loop() {
        use crate::fedavg::{FedAvgConfig, FedAvgRunner};
        use flsys::{Allocation, ScenarioBuilder};

        let scenario = ScenarioBuilder::paper_default()
            .with_devices(5)
            .with_global_rounds(6)
            .build(2)
            .unwrap();
        let data = dataset();
        let allocation = Allocation::equal_split_max(&scenario);
        let report =
            FedAvgRunner::new(FedAvgConfig::default()).run(&scenario, &allocation, &data).unwrap();

        let mut trainer = RoundTrainer::new(&data, 0.5, scenario.params.local_iterations);
        let all: Vec<usize> = (0..5).collect();
        for round in &report.rounds {
            let step = trainer.step(&all);
            assert_eq!(step.global_loss.to_bits(), round.global_loss.to_bits());
            assert_eq!(step.test_accuracy.to_bits(), round.test_accuracy.to_bits());
        }
    }

    #[test]
    fn empty_round_leaves_the_model_unchanged() {
        let data = dataset();
        let mut trainer = RoundTrainer::new(&data, 0.5, 4);
        trainer.step(&[0, 1, 2, 3, 4]);
        let before = trainer.model().clone();
        let step = trainer.step(&[]);
        assert_eq!(step.participants, 0);
        assert_eq!(trainer.model(), &before);
        let (loss, acc) = trainer.evaluate();
        assert_eq!(step.global_loss.to_bits(), loss.to_bits());
        assert_eq!(step.test_accuracy.to_bits(), acc.to_bits());
    }

    #[test]
    fn partial_participation_still_learns() {
        let data = dataset();
        let mut trainer = RoundTrainer::new(&data, 0.5, 4);
        let (loss0, _) = trainer.evaluate();
        for round in 0..12 {
            // A rotating 3-of-5 subset.
            let participants: Vec<usize> = (0..5).filter(|i| (i + round) % 5 < 3).collect();
            trainer.step(&participants);
        }
        let (loss, acc) = trainer.evaluate();
        assert!(loss < loss0, "loss {loss} should improve on {loss0}");
        assert!(acc > 0.7, "accuracy {acc}");
    }
}
