//! # fedsim
//!
//! A FedAvg training simulator that exercises the resource-allocation results end to end.
//!
//! The ICDCS 2022 paper models training cost analytically (its metrics are closed-form energy
//! and completion time), but the system it describes is an actual FedAvg deployment: each
//! device runs `R_l` local SGD iterations over its own data, uploads its model, and the base
//! station aggregates. This crate provides that substrate:
//!
//! * [`data`] — synthetic binary-classification datasets with controllable non-IID skew,
//!   partitioned across devices.
//! * [`model`] — a hand-rolled logistic-regression model with plain SGD (no external ML
//!   dependencies).
//! * [`fedavg`] — the federated averaging loop of the paper's Section III (weighted by
//!   `D_n / D`), wired to an [`flsys::Scenario`] so every round is also costed in joules and
//!   seconds through the same formulas the optimizer uses.
//! * [`rounds`] — the partial-participation stepper underneath the round simulator: a
//!   scheduling policy picks a participant subset each global round and [`RoundTrainer`]
//!   trains and aggregates exactly those devices.
//!
//! ## Example
//!
//! ```rust
//! use fedsim::prelude::*;
//! use flsys::{Allocation, ScenarioBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = ScenarioBuilder::paper_default().with_devices(5).with_global_rounds(5).build(1)?;
//! let dataset = FederatedDataset::synthetic(&SyntheticConfig::default().with_devices(5), 7);
//! let allocation = Allocation::equal_split_max(&scenario);
//! let report = FedAvgRunner::new(FedAvgConfig::default())
//!     .run(&scenario, &allocation, &dataset)?;
//! assert_eq!(report.rounds.len(), 5);
//! assert!(report.final_accuracy > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod fedavg;
pub mod model;
pub mod rounds;

pub use data::{DeviceDataset, FederatedDataset, SyntheticConfig};
pub use fedavg::{FedAvgConfig, FedAvgRunner, RoundReport, TrainingReport};
pub use model::LogisticModel;
pub use rounds::{RoundTrainer, TrainStep};

/// Convenient re-exports.
pub mod prelude {
    pub use crate::data::{FederatedDataset, SyntheticConfig};
    pub use crate::fedavg::{FedAvgConfig, FedAvgRunner};
    pub use crate::model::LogisticModel;
    pub use crate::rounds::RoundTrainer;
}
