//! Hand-rolled logistic regression.
//!
//! The model each device trains locally: logistic regression with a bias term, optimized by
//! plain mini-batch-free SGD (every local iteration is a full pass over the device's data,
//! matching the paper's statement that "each device n uses all of its `D_n` data samples" per
//! local iteration).

use crate::data::DeviceDataset;

/// A logistic-regression model `σ(w·x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticModel {
    /// Creates a zero-initialized model of the given feature dimension.
    pub fn zeros(dimension: usize) -> Self {
        Self { weights: vec![0.0; dimension], bias: 0.0 }
    }

    /// Feature dimension.
    pub fn dimension(&self) -> usize {
        self.weights.len()
    }

    /// Predicted probability of the positive class for one sample.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let z: f64 = self.weights.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + self.bias;
        sigmoid(z)
    }

    /// Hard 0/1 prediction for one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.predict_proba(x) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }

    /// Mean cross-entropy loss over a dataset (the paper's `l_n(w)`).
    ///
    /// Returns `0.0` for an empty dataset.
    pub fn loss(&self, data: &DeviceDataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let eps = 1e-12;
        let total: f64 = data
            .features
            .iter()
            .zip(&data.labels)
            .map(|(x, &y)| {
                let p = self.predict_proba(x).clamp(eps, 1.0 - eps);
                -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
            })
            .sum();
        total / data.len() as f64
    }

    /// Classification accuracy over a dataset. Returns `0.0` for an empty dataset.
    pub fn accuracy(&self, data: &DeviceDataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| (self.predict(x) - y).abs() < 0.5)
            .count();
        correct as f64 / data.len() as f64
    }

    /// One full-batch gradient-descent step on a device's local data.
    pub fn sgd_step(&mut self, data: &DeviceDataset, learning_rate: f64) {
        if data.is_empty() {
            return;
        }
        let n = data.len() as f64;
        let dim = self.dimension();
        let mut grad_w = vec![0.0; dim];
        let mut grad_b = 0.0;
        for (x, &y) in data.features.iter().zip(&data.labels) {
            let err = self.predict_proba(x) - y;
            for (g, &xj) in grad_w.iter_mut().zip(x) {
                *g += err * xj;
            }
            grad_b += err;
        }
        for (w, &g) in self.weights.iter_mut().zip(&grad_w) {
            *w -= learning_rate * g / n;
        }
        self.bias -= learning_rate * grad_b / n;
    }

    /// Runs `iterations` local full-batch steps (the paper's `R_l` local iterations).
    pub fn train_local(&mut self, data: &DeviceDataset, learning_rate: f64, iterations: u32) {
        for _ in 0..iterations {
            self.sgd_step(data, learning_rate);
        }
    }

    /// Weighted average of several models (FedAvg aggregation with weights `D_n / D`).
    ///
    /// Models and weights must be non-empty and of equal length; weights are renormalized to
    /// sum to one. Returns `None` for empty or mismatched input.
    pub fn weighted_average(models: &[LogisticModel], weights: &[f64]) -> Option<LogisticModel> {
        if models.is_empty() || models.len() != weights.len() {
            return None;
        }
        let dim = models[0].dimension();
        if models.iter().any(|m| m.dimension() != dim) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut avg = LogisticModel::zeros(dim);
        for (m, &w) in models.iter().zip(weights) {
            let share = w / total;
            for j in 0..dim {
                avg.weights[j] += share * m.weights[j];
            }
            avg.bias += share * m.bias;
        }
        Some(avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{FederatedDataset, SyntheticConfig};

    fn toy_data() -> DeviceDataset {
        // Separable on the first coordinate.
        DeviceDataset {
            features: vec![vec![2.0, 0.1], vec![1.5, -0.3], vec![-2.0, 0.2], vec![-1.0, 0.4]],
            labels: vec![1.0, 1.0, 0.0, 0.0],
        }
    }

    #[test]
    fn sigmoid_is_stable_and_bounded() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0 && sigmoid(1000.0) > 0.999);
        assert!(sigmoid(-1000.0) >= 0.0 && sigmoid(-1000.0) < 1e-3);
    }

    #[test]
    fn training_reduces_loss_and_separates_toy_data() {
        let data = toy_data();
        let mut model = LogisticModel::zeros(2);
        let initial_loss = model.loss(&data);
        model.train_local(&data, 0.5, 200);
        assert!(model.loss(&data) < initial_loss);
        assert_eq!(model.accuracy(&data), 1.0);
    }

    #[test]
    fn empty_dataset_is_harmless() {
        let mut model = LogisticModel::zeros(3);
        let empty = DeviceDataset::default();
        model.sgd_step(&empty, 0.1);
        assert_eq!(model.loss(&empty), 0.0);
        assert_eq!(model.accuracy(&empty), 0.0);
        assert_eq!(model, LogisticModel::zeros(3));
    }

    #[test]
    fn weighted_average_respects_weights() {
        let a = LogisticModel { weights: vec![1.0, 0.0], bias: 1.0 };
        let b = LogisticModel { weights: vec![0.0, 1.0], bias: -1.0 };
        let avg = LogisticModel::weighted_average(&[a, b], &[3.0, 1.0]).unwrap();
        assert!((avg.weights[0] - 0.75).abs() < 1e-12);
        assert!((avg.weights[1] - 0.25).abs() < 1e-12);
        assert!((avg.bias - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_average_rejects_bad_input() {
        let a = LogisticModel::zeros(2);
        assert!(LogisticModel::weighted_average(&[], &[]).is_none());
        assert!(LogisticModel::weighted_average(std::slice::from_ref(&a), &[1.0, 2.0]).is_none());
        assert!(LogisticModel::weighted_average(
            &[a.clone(), LogisticModel::zeros(3)],
            &[1.0, 1.0]
        )
        .is_none());
        assert!(LogisticModel::weighted_average(&[a], &[0.0]).is_none());
    }

    #[test]
    fn learns_synthetic_task_better_than_chance() {
        let data = FederatedDataset::synthetic(
            &SyntheticConfig::default().with_devices(1).with_samples_per_device(400),
            5,
        );
        let mut model = LogisticModel::zeros(data.dimension);
        model.train_local(&data.devices[0], 0.5, 300);
        assert!(model.accuracy(&data.test) > 0.8, "accuracy {}", model.accuracy(&data.test));
    }
}
