//! Synthetic federated datasets.
//!
//! Real FL deployments train on private on-device data which is, by definition, unavailable;
//! the paper's evaluation does not use a dataset at all. To let the simulator exercise an
//! actual learning task we generate a linearly separable (with label noise) binary
//! classification problem from a ground-truth weight vector, and partition it across devices
//! with a configurable degree of non-IID feature skew — the standard synthetic setup used in
//! FL systems papers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wireless::shadowing::standard_normal;

/// One device's local dataset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviceDataset {
    /// Feature vectors, one per sample.
    pub features: Vec<Vec<f64>>,
    /// Binary labels in `{0.0, 1.0}`, aligned with `features`.
    pub labels: Vec<f64>,
}

impl DeviceDataset {
    /// Number of samples on this device.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the device holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A dataset partitioned across the devices of an FL system.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FederatedDataset {
    /// Per-device shards.
    pub devices: Vec<DeviceDataset>,
    /// Held-out test set used to score the global model.
    pub test: DeviceDataset,
    /// Feature dimension (including no bias term; the model adds its own).
    pub dimension: usize,
}

/// Configuration of the synthetic dataset generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of devices to partition across.
    pub num_devices: usize,
    /// Samples per device.
    pub samples_per_device: usize,
    /// Feature dimension.
    pub dimension: usize,
    /// Degree of non-IID skew in `[0, 1]`: `0` gives IID shards, `1` gives every device its
    /// own strongly shifted feature distribution.
    pub skew: f64,
    /// Probability that a label is flipped (label noise).
    pub label_noise: f64,
    /// Size of the held-out test set.
    pub test_samples: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_devices: 10,
            samples_per_device: 100,
            dimension: 10,
            skew: 0.3,
            label_noise: 0.05,
            test_samples: 500,
        }
    }
}

impl SyntheticConfig {
    /// Sets the number of devices.
    pub fn with_devices(mut self, n: usize) -> Self {
        self.num_devices = n;
        self
    }

    /// Sets the number of samples per device.
    pub fn with_samples_per_device(mut self, samples: usize) -> Self {
        self.samples_per_device = samples;
        self
    }

    /// Sets the non-IID skew in `[0, 1]`.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew.clamp(0.0, 1.0);
        self
    }
}

impl FederatedDataset {
    /// Generates a synthetic federated dataset from a deterministic seed.
    pub fn synthetic(config: &SyntheticConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = config.dimension.max(1);

        // Ground-truth separating hyperplane.
        let truth: Vec<f64> = (0..dim).map(|_| standard_normal(&mut rng)).collect();

        let make_samples = |count: usize, shift: &[f64], rng: &mut StdRng| -> DeviceDataset {
            let mut features = Vec::with_capacity(count);
            let mut labels = Vec::with_capacity(count);
            for _ in 0..count {
                let x: Vec<f64> = (0..dim)
                    .map(|j| standard_normal(rng) + shift.get(j).copied().unwrap_or(0.0))
                    .collect();
                let score: f64 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
                let mut label = if score > 0.0 { 1.0 } else { 0.0 };
                if rng.gen::<f64>() < config.label_noise {
                    label = 1.0 - label;
                }
                features.push(x);
                labels.push(label);
            }
            DeviceDataset { features, labels }
        };

        let zero_shift = vec![0.0; dim];
        let devices: Vec<DeviceDataset> = (0..config.num_devices)
            .map(|_| {
                let shift: Vec<f64> =
                    (0..dim).map(|_| config.skew * standard_normal(&mut rng)).collect();
                make_samples(config.samples_per_device, &shift, &mut rng)
            })
            .collect();
        let test = make_samples(config.test_samples, &zero_shift, &mut rng);

        Self { devices, test, dimension: dim }
    }

    /// Total number of training samples across all devices (`D` in the paper).
    pub fn total_samples(&self) -> usize {
        self.devices.iter().map(DeviceDataset::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = SyntheticConfig::default();
        let a = FederatedDataset::synthetic(&cfg, 3);
        let b = FederatedDataset::synthetic(&cfg, 3);
        let c = FederatedDataset::synthetic(&cfg, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = SyntheticConfig::default().with_devices(7).with_samples_per_device(20);
        let d = FederatedDataset::synthetic(&cfg, 1);
        assert_eq!(d.devices.len(), 7);
        assert_eq!(d.total_samples(), 140);
        assert_eq!(d.test.len(), cfg.test_samples);
        for dev in &d.devices {
            assert!(!dev.is_empty());
            assert_eq!(dev.features.len(), dev.labels.len());
            for x in &dev.features {
                assert_eq!(x.len(), cfg.dimension);
            }
        }
    }

    #[test]
    fn labels_are_binary_and_mixed() {
        let d = FederatedDataset::synthetic(&SyntheticConfig::default(), 9);
        let all: Vec<f64> = d.devices.iter().flat_map(|dd| dd.labels.clone()).collect();
        assert!(all.iter().all(|&l| l == 0.0 || l == 1.0));
        let positives = all.iter().filter(|&&l| l == 1.0).count();
        assert!(positives > all.len() / 10 && positives < all.len() * 9 / 10);
    }

    #[test]
    fn skew_shifts_device_means_apart() {
        let iid = FederatedDataset::synthetic(&SyntheticConfig::default().with_skew(0.0), 11);
        let skewed = FederatedDataset::synthetic(&SyntheticConfig::default().with_skew(1.0), 11);
        let spread = |d: &FederatedDataset| -> f64 {
            let means: Vec<f64> = d
                .devices
                .iter()
                .map(|dd| dd.features.iter().map(|x| x[0]).sum::<f64>() / dd.len() as f64)
                .collect();
            let grand = means.iter().sum::<f64>() / means.len() as f64;
            means.iter().map(|m| (m - grand) * (m - grand)).sum::<f64>() / means.len() as f64
        };
        assert!(spread(&skewed) > spread(&iid));
    }
}
