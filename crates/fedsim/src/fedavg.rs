//! The FedAvg loop with per-round energy/time accounting.
//!
//! Every global round follows the paper's Section III: each device runs `R_l` local
//! iterations over its entire local dataset, uploads its model, and the base station forms
//! the `D_n / D`-weighted average and broadcasts it back. In parallel the round is costed with
//! the same `flsys` formulas the optimizer uses, so a training run reports loss/accuracy *and*
//! cumulative joules/seconds for whichever allocation is being exercised.

use crate::data::FederatedDataset;
use crate::rounds::RoundTrainer;
use flsys::{Allocation, FlError, Scenario};

/// Configuration of a FedAvg run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FedAvgConfig {
    /// Local SGD learning rate.
    pub learning_rate: f64,
    /// Overrides the scenario's number of global rounds when set (useful for short tests).
    pub rounds_override: Option<u32>,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        Self { learning_rate: 0.5, rounds_override: None }
    }
}

/// Per-round record of a FedAvg run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundReport {
    /// Global round index (1-based).
    pub round: u32,
    /// Training loss of the global model, averaged over devices with weights `D_n / D`.
    pub global_loss: f64,
    /// Accuracy of the global model on the held-out test set.
    pub test_accuracy: f64,
    /// Energy spent in this round across all devices (J).
    pub round_energy_j: f64,
    /// Wall-clock length of this round (straggler time, s).
    pub round_time_s: f64,
    /// Cumulative energy since the start of training (J).
    pub cumulative_energy_j: f64,
    /// Cumulative time since the start of training (s).
    pub cumulative_time_s: f64,
}

/// Summary of a complete FedAvg run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingReport {
    /// One record per global round, in order.
    pub rounds: Vec<RoundReport>,
    /// Test accuracy of the final global model.
    pub final_accuracy: f64,
    /// Training loss of the final global model.
    pub final_loss: f64,
    /// Total energy of the run (J).
    pub total_energy_j: f64,
    /// Total wall-clock time of the run (s).
    pub total_time_s: f64,
}

/// Runs FedAvg over a scenario / allocation / dataset triple.
#[derive(Debug, Clone, Default)]
pub struct FedAvgRunner {
    config: FedAvgConfig,
}

impl FedAvgRunner {
    /// Creates a runner.
    pub fn new(config: FedAvgConfig) -> Self {
        Self { config }
    }

    /// Runs federated training and returns the per-round report.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::AllocationSizeMismatch`] if the dataset or allocation do not cover
    /// the scenario's devices, and propagates cost-evaluation errors.
    pub fn run(
        &self,
        scenario: &Scenario,
        allocation: &Allocation,
        dataset: &FederatedDataset,
    ) -> Result<TrainingReport, FlError> {
        let n = scenario.devices.len();
        if dataset.devices.len() != n {
            return Err(FlError::AllocationSizeMismatch { devices: n, got: dataset.devices.len() });
        }
        // Per-round cost is identical across rounds (the allocation is static), so evaluate once.
        let cost = scenario.cost(allocation)?;
        let round_energy_j = cost.total_energy_j / scenario.params.rg();
        let round_time_s = cost.round_time_s;

        let rounds = self.config.rounds_override.unwrap_or(scenario.params.global_rounds);
        let local_iterations = scenario.params.local_iterations;

        // Full participation every round: the rounds stepper with the all-devices subset.
        let mut trainer = RoundTrainer::new(dataset, self.config.learning_rate, local_iterations);
        let all_devices: Vec<usize> = (0..n).collect();
        let mut reports = Vec::with_capacity(rounds as usize);
        let mut cumulative_energy = 0.0;
        let mut cumulative_time = 0.0;

        for round in 1..=rounds {
            let step = trainer.step(&all_devices);
            cumulative_energy += round_energy_j;
            cumulative_time += round_time_s;
            reports.push(RoundReport {
                round,
                global_loss: step.global_loss,
                test_accuracy: step.test_accuracy,
                round_energy_j,
                round_time_s,
                cumulative_energy_j: cumulative_energy,
                cumulative_time_s: cumulative_time,
            });
        }

        let final_accuracy = reports.last().map_or(0.0, |r| r.test_accuracy);
        let final_loss = reports.last().map_or(0.0, |r| r.global_loss);
        Ok(TrainingReport {
            rounds: reports,
            final_accuracy,
            final_loss,
            total_energy_j: cumulative_energy,
            total_time_s: cumulative_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticConfig;
    use flsys::ScenarioBuilder;

    fn setup(rounds: u32) -> (Scenario, FederatedDataset, Allocation) {
        let scenario = ScenarioBuilder::paper_default()
            .with_devices(5)
            .with_global_rounds(rounds)
            .build(2)
            .unwrap();
        let dataset = FederatedDataset::synthetic(
            &SyntheticConfig::default().with_devices(5).with_samples_per_device(80),
            3,
        );
        let allocation = Allocation::equal_split_max(&scenario);
        (scenario, dataset, allocation)
    }

    #[test]
    fn training_improves_loss_and_accuracy() {
        let (s, d, a) = setup(15);
        let report = FedAvgRunner::new(FedAvgConfig::default()).run(&s, &a, &d).unwrap();
        assert_eq!(report.rounds.len(), 15);
        assert!(report.rounds.last().unwrap().global_loss < report.rounds[0].global_loss);
        assert!(report.final_accuracy > 0.7, "accuracy {}", report.final_accuracy);
    }

    #[test]
    fn cost_accounting_accumulates_linearly() {
        let (s, d, a) = setup(4);
        let report = FedAvgRunner::new(FedAvgConfig::default()).run(&s, &a, &d).unwrap();
        let per_round_e = report.rounds[0].round_energy_j;
        let per_round_t = report.rounds[0].round_time_s;
        let last = report.rounds.last().unwrap();
        assert!((last.cumulative_energy_j - 4.0 * per_round_e).abs() < 1e-9);
        assert!((last.cumulative_time_s - 4.0 * per_round_t).abs() < 1e-9);
        assert!((report.total_energy_j - last.cumulative_energy_j).abs() < 1e-12);
        // Matches the closed-form evaluation used by the optimizer.
        let cost = s.cost(&a).unwrap();
        assert!((report.total_energy_j - cost.total_energy_j / s.params.rg() * 4.0).abs() < 1e-9);
    }

    #[test]
    fn rounds_override_shortens_run() {
        let (s, d, a) = setup(50);
        let cfg = FedAvgConfig { rounds_override: Some(3), ..Default::default() };
        let report = FedAvgRunner::new(cfg).run(&s, &a, &d).unwrap();
        assert_eq!(report.rounds.len(), 3);
    }

    #[test]
    fn mismatched_dataset_is_rejected() {
        let (s, _, a) = setup(3);
        let wrong = FederatedDataset::synthetic(&SyntheticConfig::default().with_devices(4), 3);
        assert!(matches!(
            FedAvgRunner::new(FedAvgConfig::default()).run(&s, &a, &wrong),
            Err(FlError::AllocationSizeMismatch { .. })
        ));
    }
}
