//! Newtypes for the physical units used throughout the system model.
//!
//! The parameter table of the paper mixes logarithmic (dBm, dB) and linear (W, Hz, J, s)
//! quantities; the classic failure mode in reimplementations is feeding a dBm value where the
//! optimizer expects watts. These newtypes make the conversion explicit and one-directional:
//! logarithmic types convert *to* linear types by a named method, never implicitly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Transmit power expressed in dBm (decibels relative to one milliwatt).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(f64);

impl Dbm {
    /// Wraps a raw dBm value.
    pub fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw dBm value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to linear watts: `10^((dBm − 30) / 10)`.
    pub fn to_watts(self) -> Watts {
        Watts::new(10f64.powf((self.0 - 30.0) / 10.0))
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dBm", self.0)
    }
}

/// A dimensionless ratio expressed in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(f64);

impl Db {
    /// Wraps a raw dB value.
    pub fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw dB value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to a linear ratio: `10^(dB/10)`.
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds a `Db` from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ratio` is not strictly positive.
    pub fn from_linear(ratio: f64) -> Self {
        debug_assert!(ratio > 0.0, "dB conversion needs a positive ratio");
        Self(10.0 * ratio.log10())
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dB", self.0)
    }
}

/// Power in linear watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Wraps a raw power in watts.
    pub fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in watts.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to dBm: `10·log10(W) + 30`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the power is not strictly positive.
    pub fn to_dbm(self) -> Dbm {
        debug_assert!(self.0 > 0.0, "dBm conversion needs positive power");
        Dbm::new(10.0 * self.0.log10() + 30.0)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} W", self.0)
    }
}

/// Frequency / bandwidth in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Hertz(f64);

impl Hertz {
    /// Wraps a raw frequency in Hz.
    pub fn new(value: f64) -> Self {
        Self(value)
    }

    /// Convenience constructor from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1.0e6)
    }

    /// Convenience constructor from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1.0e9)
    }

    /// Returns the raw value in Hz.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Hz", self.0)
    }
}

/// Distance in kilometres (the unit the paper's path-loss formula expects).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Kilometres(f64);

impl Kilometres {
    /// Wraps a raw distance in km.
    pub fn new(value: f64) -> Self {
        Self(value)
    }

    /// Convenience constructor from metres.
    pub fn from_metres(metres: f64) -> Self {
        Self(metres / 1000.0)
    }

    /// Returns the raw value in km.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the distance in metres.
    pub fn as_metres(self) -> f64 {
        self.0 * 1000.0
    }
}

impl fmt::Display for Kilometres {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} km", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_to_watts_known_points() {
        assert!((Dbm::new(0.0).to_watts().value() - 1.0e-3).abs() < 1e-12);
        assert!((Dbm::new(30.0).to_watts().value() - 1.0).abs() < 1e-12);
        assert!((Dbm::new(10.0).to_watts().value() - 1.0e-2).abs() < 1e-12);
        assert!((Dbm::new(12.0).to_watts().value() - 0.015_848_931_924_611_134).abs() < 1e-12);
        assert!((Dbm::new(-174.0).to_watts().value() - 3.981_071_705_534_97e-21).abs() < 1e-30);
    }

    #[test]
    fn watts_dbm_round_trip() {
        for &p in &[1e-6, 1e-3, 0.5, 2.0, 100.0] {
            let back = Watts::new(p).to_dbm().to_watts().value();
            assert!((back - p).abs() / p < 1e-12);
        }
    }

    #[test]
    fn db_linear_round_trip() {
        for &db in &[-120.0, -30.0, 0.0, 3.0, 60.0] {
            let back = Db::from_linear(Db::new(db).to_linear()).value();
            assert!((back - db).abs() < 1e-9);
        }
    }

    #[test]
    fn hertz_constructors() {
        assert_eq!(Hertz::from_mhz(20.0).value(), 2.0e7);
        assert_eq!(Hertz::from_ghz(2.0).value(), 2.0e9);
    }

    #[test]
    fn kilometres_conversions() {
        assert_eq!(Kilometres::from_metres(500.0).value(), 0.5);
        assert_eq!(Kilometres::new(1.5).as_metres(), 1500.0);
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(Dbm::new(10.0).to_string(), "10 dBm");
        assert_eq!(Db::new(8.0).to_string(), "8 dB");
        assert_eq!(Watts::new(0.01).to_string(), "0.01 W");
        assert_eq!(Hertz::new(100.0).to_string(), "100 Hz");
        assert_eq!(Kilometres::new(0.5).to_string(), "0.5 km");
    }

    #[test]
    fn ordering_behaves_like_f64() {
        assert!(Dbm::new(5.0) < Dbm::new(12.0));
        assert!(Watts::new(0.1) > Watts::new(0.01));
    }
}
