//! Channel gains and the Shannon rate `G_n(p_n, B_n)`.
//!
//! Equation (1) of the paper gives the uplink rate of device `n` as
//! `r_n = B_n · log2(1 + g_n p_n / (N₀ B_n))`; Lemma 1 proves it jointly concave in
//! `(p_n, B_n)`. This module provides the gain type, the rate function, and helpers for its
//! partial derivatives (used by the KKT solvers and verified against finite differences in
//! the tests).

use crate::noise::NoiseDensity;
use crate::pathloss::PathLossModel;
use crate::shadowing::LogNormalShadowing;
use crate::units::{Db, Hertz, Kilometres, Watts};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Linear channel power gain `g_n ∈ (0, 1]` between a device and the base station.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct ChannelGain(f64);

impl ChannelGain {
    /// Wraps a linear gain value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the gain is not strictly positive or not finite.
    pub fn new(linear: f64) -> Self {
        debug_assert!(
            linear > 0.0 && linear.is_finite(),
            "channel gain must be positive and finite"
        );
        Self(linear)
    }

    /// Builds a gain from a (typically negative) dB figure.
    pub fn from_db(db: f64) -> Self {
        Self::new(Db::new(db).to_linear())
    }

    /// The linear gain value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The gain in dB.
    pub fn as_db(self) -> Db {
        Db::from_linear(self.0)
    }

    /// Synthesizes a gain from distance: deterministic path loss plus one shadowing draw.
    pub fn from_distance<R: Rng + ?Sized>(
        distance: Kilometres,
        path_loss: &PathLossModel,
        shadowing: &LogNormalShadowing,
        rng: &mut R,
    ) -> Self {
        Self::new(path_loss.gain(distance) * shadowing.sample_linear(rng))
    }
}

/// An uplink data rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct RateBps(f64);

impl RateBps {
    /// Wraps a rate in bit/s.
    pub fn new(bits_per_sec: f64) -> Self {
        Self(bits_per_sec)
    }

    /// The rate in bit/s.
    pub fn as_bits_per_sec(self) -> f64 {
        self.0
    }
}

/// The exact Shannon rate of equation (1): `B · log2(1 + g·p / (N₀·B))`.
///
/// Degenerate inputs are handled the way the optimizer needs them: zero bandwidth or zero
/// power yields a zero rate (the limit of the formula).
pub fn shannon_rate(
    power: Watts,
    bandwidth: Hertz,
    gain: ChannelGain,
    noise: NoiseDensity,
) -> RateBps {
    RateBps::new(shannon_rate_raw(
        power.value(),
        bandwidth.value(),
        gain.value(),
        noise.watts_per_hz(),
    ))
}

/// Raw-`f64` version of [`shannon_rate`] for use inside hot solver loops.
///
/// `G(p, B) = B log2(1 + g p / (N0 B))`, with `G(p, 0) = 0` and `G(0, B) = 0`.
#[inline]
pub fn shannon_rate_raw(p: f64, b: f64, g: f64, n0: f64) -> f64 {
    if b <= 0.0 || p <= 0.0 {
        return 0.0;
    }
    b * (1.0 + g * p / (n0 * b)).log2()
}

/// Partial derivative `∂G/∂p = g / (N₀ B + g p) / ln 2 · B`… written in the numerically
/// stable form `(g B) / ((N₀ B + g p) ln 2)`.
#[inline]
pub fn shannon_rate_dp(p: f64, b: f64, g: f64, n0: f64) -> f64 {
    if b <= 0.0 {
        return 0.0;
    }
    g * b / ((n0 * b + g * p.max(0.0)) * std::f64::consts::LN_2)
}

/// Partial derivative `∂G/∂B = log2(1 + gp/(N₀B)) − gp / ((N₀B + gp) ln 2)`.
#[inline]
pub fn shannon_rate_db(p: f64, b: f64, g: f64, n0: f64) -> f64 {
    if b <= 0.0 || p <= 0.0 {
        // lim_{B→0} ∂G/∂B = +∞ for p > 0; for p = 0 the rate is identically 0.
        return if p > 0.0 { f64::INFINITY } else { 0.0 };
    }
    let snr = g * p / (n0 * b);
    (1.0 + snr).log2() - snr / ((1.0 + snr) * std::f64::consts::LN_2)
}

/// Inverse of the rate in the power coordinate: the power needed for device with gain `g` to
/// reach `rate` over bandwidth `b` — `p = (2^(rate/b) − 1)·N₀·b/g`.
///
/// Returns `f64::INFINITY` if `b ≤ 0` and `rate > 0`.
#[inline]
pub fn power_for_rate(rate: f64, b: f64, g: f64, n0: f64) -> f64 {
    if rate <= 0.0 {
        return 0.0;
    }
    if b <= 0.0 {
        return f64::INFINITY;
    }
    ((rate / b).exp2() - 1.0) * n0 * b / g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const G: f64 = 1.0e-10;
    const N0: f64 = 3.98e-21;

    #[test]
    fn rate_matches_hand_calculation() {
        // 10 dBm = 10 mW, 400 kHz, g = 1e-10, N0 ~ 3.98e-21 -> SNR = 1e-12/(1.592e-15) ~ 628.
        let p = 0.01;
        let b = 4.0e5;
        let snr = G * p / (N0 * b);
        let expected = b * (1.0 + snr).log2();
        let got = shannon_rate_raw(p, b, G, N0);
        assert!((got - expected).abs() / expected < 1e-12);
        assert!(got > 3.0e6 && got < 4.5e6, "rate {got} outside plausible range");
    }

    #[test]
    fn typed_and_raw_agree() {
        let typed = shannon_rate(
            Watts::new(0.01),
            Hertz::new(4.0e5),
            ChannelGain::new(G),
            NoiseDensity::from_watts_per_hz(N0),
        );
        let raw = shannon_rate_raw(0.01, 4.0e5, G, N0);
        assert_eq!(typed.as_bits_per_sec(), raw);
    }

    #[test]
    fn degenerate_inputs_give_zero() {
        assert_eq!(shannon_rate_raw(0.0, 1.0e6, G, N0), 0.0);
        assert_eq!(shannon_rate_raw(0.01, 0.0, G, N0), 0.0);
    }

    #[test]
    fn rate_is_monotone_in_power_and_bandwidth() {
        let mut prev = 0.0;
        for i in 1..50 {
            let p = i as f64 * 1e-3;
            let r = shannon_rate_raw(p, 4.0e5, G, N0);
            assert!(r > prev);
            prev = r;
        }
        prev = 0.0;
        for i in 1..50 {
            let b = i as f64 * 1e4;
            let r = shannon_rate_raw(0.01, b, G, N0);
            assert!(r > prev, "rate should increase with bandwidth");
            prev = r;
        }
    }

    #[test]
    fn partial_derivatives_match_finite_differences() {
        let p = 0.008;
        let b = 3.0e5;
        let eps_p = 1e-9;
        let eps_b = 1e-3;
        let dp_num = (shannon_rate_raw(p + eps_p, b, G, N0)
            - shannon_rate_raw(p - eps_p, b, G, N0))
            / (2.0 * eps_p);
        let db_num = (shannon_rate_raw(p, b + eps_b, G, N0)
            - shannon_rate_raw(p, b - eps_b, G, N0))
            / (2.0 * eps_b);
        assert!((shannon_rate_dp(p, b, G, N0) - dp_num).abs() / dp_num.abs() < 1e-5);
        assert!((shannon_rate_db(p, b, G, N0) - db_num).abs() / db_num.abs() < 1e-5);
    }

    #[test]
    fn concavity_along_random_segments() {
        // Lemma 1: G is concave in (p, B). Check midpoint concavity on random segments.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let p1 = rng.gen::<f64>() * 0.015 + 1e-4;
            let p2 = rng.gen::<f64>() * 0.015 + 1e-4;
            let b1 = rng.gen::<f64>() * 1.0e6 + 1e3;
            let b2 = rng.gen::<f64>() * 1.0e6 + 1e3;
            let mid = shannon_rate_raw(0.5 * (p1 + p2), 0.5 * (b1 + b2), G, N0);
            let avg = 0.5 * (shannon_rate_raw(p1, b1, G, N0) + shannon_rate_raw(p2, b2, G, N0));
            assert!(mid >= avg - 1e-6 * avg.abs().max(1.0), "concavity violated");
        }
    }

    #[test]
    fn power_for_rate_inverts_rate() {
        let b = 4.0e5;
        let target = 2.5e6;
        let p = power_for_rate(target, b, G, N0);
        let achieved = shannon_rate_raw(p, b, G, N0);
        assert!((achieved - target).abs() / target < 1e-12);
        assert_eq!(power_for_rate(0.0, b, G, N0), 0.0);
        assert_eq!(power_for_rate(1.0, 0.0, G, N0), f64::INFINITY);
    }

    #[test]
    fn gain_from_distance_is_reproducible_and_positive() {
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let pl = PathLossModel::paper_default();
        let sh = LogNormalShadowing::paper_default();
        let a = ChannelGain::from_distance(Kilometres::new(0.3), &pl, &sh, &mut rng_a);
        let b = ChannelGain::from_distance(Kilometres::new(0.3), &pl, &sh, &mut rng_b);
        assert_eq!(a, b);
        assert!(a.value() > 0.0 && a.value() < 1.0);
    }

    #[test]
    fn gain_db_round_trip() {
        let g = ChannelGain::from_db(-105.5);
        assert!((g.as_db().value() + 105.5).abs() < 1e-9);
    }
}
