//! Log-normal shadow fading.
//!
//! The paper adds shadow fading with an 8 dB standard deviation on top of the deterministic
//! path loss. We sample it as a zero-mean Gaussian in the dB domain (equivalently, the linear
//! gain factor is log-normally distributed). The Gaussian is generated with a Box–Muller
//! transform so the crate does not need a distributions dependency.

use crate::units::Db;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Zero-mean log-normal shadow fading with configurable dB standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalShadowing {
    /// Standard deviation of the shadowing term in dB.
    pub sigma_db: f64,
}

impl LogNormalShadowing {
    /// Creates a shadowing model with the given dB standard deviation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `sigma_db` is negative.
    pub fn new(sigma_db: f64) -> Self {
        debug_assert!(sigma_db >= 0.0, "shadowing sigma must be non-negative");
        Self { sigma_db }
    }

    /// The paper's 8 dB standard deviation.
    pub fn paper_default() -> Self {
        Self { sigma_db: 8.0 }
    }

    /// Draws one shadowing realization in dB (may be positive or negative).
    pub fn sample_db<R: Rng + ?Sized>(&self, rng: &mut R) -> Db {
        Db::new(self.sigma_db * standard_normal(rng))
    }

    /// Draws one shadowing realization as a linear gain multiplier (always positive).
    pub fn sample_linear<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_db(rng).to_linear()
    }
}

impl Default for LogNormalShadowing {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_sigma() {
        assert_eq!(LogNormalShadowing::paper_default().sigma_db, 8.0);
        assert_eq!(LogNormalShadowing::default(), LogNormalShadowing::new(8.0));
    }

    #[test]
    fn zero_sigma_is_deterministic_unity_gain() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = LogNormalShadowing::new(0.0);
        for _ in 0..10 {
            assert_eq!(s.sample_db(&mut rng).value(), 0.0);
            assert_eq!(s.sample_linear(&mut rng), 1.0);
        }
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let mut rng = StdRng::seed_from_u64(42);
        let s = LogNormalShadowing::new(8.0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| s.sample_db(&mut rng).value()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.3, "mean {mean} too far from 0");
        assert!((var.sqrt() - 8.0).abs() < 0.3, "std {} too far from 8", var.sqrt());
    }

    #[test]
    fn linear_samples_are_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = LogNormalShadowing::paper_default();
        for _ in 0..1000 {
            assert!(s.sample_linear(&mut rng) > 0.0);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.03);
    }

    #[test]
    fn seeded_rng_is_reproducible() {
        let s = LogNormalShadowing::paper_default();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..5).map(|_| s.sample_db(&mut rng).value()).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..5).map(|_| s.sample_db(&mut rng).value()).collect()
        };
        assert_eq!(a, b);
    }
}
