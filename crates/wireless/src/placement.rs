//! Device placement around the base station.
//!
//! Section VII-A: "The devices are uniformly located in a circular area of size 500 m × 500 m
//! and the center is a base station." We interpret that as a disc of the given radius centred
//! on the base station and place devices uniformly *by area* (radius sampled as `R·sqrt(u)`),
//! which is the standard convention in cellular simulation.

use crate::units::Kilometres;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A 2-D position in kilometres relative to the base station at the origin.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// x-coordinate in km.
    pub x_km: f64,
    /// y-coordinate in km.
    pub y_km: f64,
}

impl Position {
    /// Creates a position from kilometre coordinates.
    pub fn new(x_km: f64, y_km: f64) -> Self {
        Self { x_km, y_km }
    }

    /// Euclidean distance from the base station (the origin).
    pub fn distance_to_origin(&self) -> Kilometres {
        Kilometres::new((self.x_km * self.x_km + self.y_km * self.y_km).sqrt())
    }
}

/// Uniform-by-area placement of devices in a disc of given radius around the base station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscPlacement {
    /// Radius of the disc.
    pub radius: Kilometres,
    /// Devices closer than this to the base station are pushed out to this distance, so that
    /// the path-loss model stays in its intended regime.
    pub min_distance: Kilometres,
}

impl DiscPlacement {
    /// Creates a placement model with the given disc radius and a 10 m exclusion zone.
    pub fn new(radius: Kilometres) -> Self {
        Self { radius, min_distance: Kilometres::new(0.01) }
    }

    /// The paper's default: a 500 m × 500 m circular area, i.e. a 250 m radius disc.
    ///
    /// (The paper states "circular area of size 500 m × 500 m"; we read the 500 m figure as the
    /// diameter of the disc. The radius sweep of Fig. 5 varies this value explicitly, so the
    /// exact reading only shifts the default operating point, not any trend.)
    pub fn paper_default() -> Self {
        Self::new(Kilometres::new(0.25))
    }

    /// Samples one device position uniformly by area.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Position {
        let u: f64 = rng.gen();
        let r = (self.radius.value() * u.sqrt()).max(self.min_distance.value());
        let theta: f64 = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
        Position::new(r * theta.cos(), r * theta.sin())
    }

    /// Samples `n` device positions.
    pub fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Position> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

impl Default for DiscPlacement {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distance_is_euclidean() {
        let p = Position::new(0.3, 0.4);
        assert!((p.distance_to_origin().value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn samples_stay_inside_disc_and_outside_exclusion() {
        let mut rng = StdRng::seed_from_u64(5);
        let placement = DiscPlacement::new(Kilometres::new(0.5));
        for p in placement.sample_n(2_000, &mut rng) {
            let d = p.distance_to_origin().value();
            assert!(d <= 0.5 + 1e-12);
            assert!(d >= placement.min_distance.value() - 1e-12);
        }
    }

    #[test]
    fn uniform_by_area_mean_distance() {
        // For a uniform-by-area disc of radius R, E[d] = 2R/3.
        let mut rng = StdRng::seed_from_u64(17);
        let r = 1.0;
        let placement = DiscPlacement::new(Kilometres::new(r));
        let n = 50_000;
        let mean: f64 = placement
            .sample_n(n, &mut rng)
            .iter()
            .map(|p| p.distance_to_origin().value())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.0 * r / 3.0).abs() < 0.01, "mean distance {mean}");
    }

    #[test]
    fn paper_default_radius() {
        assert_eq!(DiscPlacement::paper_default().radius.value(), 0.25);
    }

    #[test]
    fn reproducible_with_seed() {
        let placement = DiscPlacement::paper_default();
        let a = {
            let mut rng = StdRng::seed_from_u64(99);
            placement.sample_n(3, &mut rng)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(99);
            placement.sample_n(3, &mut rng)
        };
        assert_eq!(a, b);
    }
}
