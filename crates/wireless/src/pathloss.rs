//! Large-scale path loss.
//!
//! Section VII-A of the paper models the channel's path loss as
//! `PL(d) = 128.1 + 37.6·log10(d)` dB with `d` in kilometres — the standard 3GPP urban-macro
//! model — plus 8 dB of log-normal shadow fading handled in [`crate::shadowing`].

use crate::units::{Db, Kilometres};
use serde::{Deserialize, Serialize};

/// A log-distance path loss model `PL(d) = intercept + slope·log10(d_km)` in dB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Path loss at 1 km, in dB.
    pub intercept_db: f64,
    /// Slope per decade of distance, in dB.
    pub slope_db_per_decade: f64,
    /// Distances below this floor are clamped to it (keeps the model finite at `d → 0`
    /// and mirrors the minimum-coupling-loss convention of cellular simulators).
    pub min_distance: Kilometres,
}

impl PathLossModel {
    /// The paper's model: `128.1 + 37.6 log10(d_km)` dB, with a 1 m minimum distance.
    pub fn paper_default() -> Self {
        Self {
            intercept_db: 128.1,
            slope_db_per_decade: 37.6,
            min_distance: Kilometres::new(1.0e-3),
        }
    }

    /// Path loss (a positive dB number) at the given distance.
    pub fn loss(&self, distance: Kilometres) -> Db {
        let d = distance.value().max(self.min_distance.value());
        Db::new(self.intercept_db + self.slope_db_per_decade * d.log10())
    }

    /// Linear channel **gain** (≤ 1) implied by the path loss at the given distance, before
    /// shadow fading: `g = 10^(−PL/10)`.
    pub fn gain(&self, distance: Kilometres) -> f64 {
        Db::new(-self.loss(distance).value()).to_linear()
    }
}

impl Default for PathLossModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_at_one_km_is_intercept() {
        let m = PathLossModel::paper_default();
        assert!((m.loss(Kilometres::new(1.0)).value() - 128.1).abs() < 1e-12);
    }

    #[test]
    fn loss_at_quarter_km_matches_hand_calc() {
        let m = PathLossModel::paper_default();
        // 128.1 + 37.6*log10(0.25) = 128.1 - 22.637... = 105.46...
        let expected = 128.1 + 37.6 * 0.25f64.log10();
        assert!((m.loss(Kilometres::new(0.25)).value() - expected).abs() < 1e-12);
    }

    #[test]
    fn gain_decreases_with_distance() {
        let m = PathLossModel::paper_default();
        let g_near = m.gain(Kilometres::new(0.1));
        let g_far = m.gain(Kilometres::new(1.0));
        assert!(g_near > g_far);
        assert!(g_far > 0.0);
    }

    #[test]
    fn distance_is_floored() {
        let m = PathLossModel::paper_default();
        let at_zero = m.loss(Kilometres::new(0.0));
        let at_floor = m.loss(m.min_distance);
        assert_eq!(at_zero, at_floor);
        assert!(at_zero.value().is_finite());
    }

    #[test]
    fn gains_are_physical() {
        let m = PathLossModel::paper_default();
        for d in [0.01, 0.1, 0.25, 0.5, 1.0, 1.5] {
            let g = m.gain(Kilometres::new(d));
            assert!(g > 0.0 && g < 1.0, "gain {g} at {d} km out of (0,1)");
        }
    }
}
