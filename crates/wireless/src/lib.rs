//! # wireless
//!
//! The FDMA wireless substrate used by the ICDCS 2022 reproduction: everything between the
//! physical placement of devices and the Shannon rate `r_n = B_n log2(1 + g_n p_n / (N_0 B_n))`
//! that the optimization problem consumes.
//!
//! * [`units`] — newtypes for decibel/linear quantities (`Dbm`, `Db`, `Watts`, `Hertz`, …) so
//!   that dBm never gets added to watts by accident.
//! * [`pathloss`] — the 3GPP-style urban-macro path loss `128.1 + 37.6·log10(d_km)` dB used in
//!   Section VII-A of the paper.
//! * [`shadowing`] — log-normal shadow fading with the paper's 8 dB standard deviation.
//! * [`placement`] — uniform placement of devices in a disc around the base station.
//! * [`channel`] — channel-gain synthesis and the exact Shannon rate function
//!   `G_n(p_n, B_n)` (Lemma 1 of the paper proves it concave; the tests here verify that
//!   numerically).
//! * [`noise`] — noise power spectral density handling.
//!
//! ## Example
//!
//! ```rust
//! use wireless::units::{Dbm, Hertz};
//! use wireless::channel::{shannon_rate, ChannelGain};
//! use wireless::noise::NoiseDensity;
//!
//! // -174 dBm/Hz noise density, 400 kHz of bandwidth, 10 dBm transmit power, -100 dB gain.
//! let n0 = NoiseDensity::from_dbm_per_hz(-174.0);
//! let gain = ChannelGain::from_db(-100.0);
//! let rate = shannon_rate(Dbm::new(10.0).to_watts(), Hertz::new(4.0e5), gain, n0);
//! assert!(rate.as_bits_per_sec() > 1.0e6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod noise;
pub mod pathloss;
pub mod placement;
pub mod shadowing;
pub mod units;

pub use channel::{shannon_rate, ChannelGain, RateBps};
pub use noise::NoiseDensity;
pub use pathloss::PathLossModel;
pub use placement::{DiscPlacement, Position};
pub use shadowing::LogNormalShadowing;
pub use units::{Db, Dbm, Hertz, Watts};
