//! Noise power spectral density.

use crate::units::{Hertz, Watts};
use serde::{Deserialize, Serialize};

/// Noise power spectral density `N₀`, stored in linear watts per hertz.
///
/// The paper uses `N₀ = −174 dBm/Hz` (thermal noise at room temperature); the noise power in
/// a sub-channel of bandwidth `B_n` is `N₀·B_n`, which is exactly what the Shannon formula
/// (1) of the paper divides by.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct NoiseDensity {
    watts_per_hz: f64,
}

impl NoiseDensity {
    /// Builds a noise density from a dBm/Hz figure (e.g. `-174.0`).
    pub fn from_dbm_per_hz(dbm_per_hz: f64) -> Self {
        Self { watts_per_hz: 10f64.powf((dbm_per_hz - 30.0) / 10.0) }
    }

    /// Builds a noise density directly from watts per hertz.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the density is not strictly positive.
    pub fn from_watts_per_hz(watts_per_hz: f64) -> Self {
        debug_assert!(watts_per_hz > 0.0, "noise density must be positive");
        Self { watts_per_hz }
    }

    /// The density in watts per hertz.
    pub fn watts_per_hz(self) -> f64 {
        self.watts_per_hz
    }

    /// Total noise power over a bandwidth: `N₀·B`.
    pub fn power_over(self, bandwidth: Hertz) -> Watts {
        Watts::new(self.watts_per_hz * bandwidth.value())
    }
}

impl Default for NoiseDensity {
    /// The paper's `-174 dBm/Hz`.
    fn default() -> Self {
        Self::from_dbm_per_hz(-174.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_value_matches_linear() {
        let n0 = NoiseDensity::from_dbm_per_hz(-174.0);
        assert!((n0.watts_per_hz() - 3.981_071_705_534_97e-21).abs() < 1e-30);
        assert_eq!(NoiseDensity::default(), n0);
    }

    #[test]
    fn power_scales_with_bandwidth() {
        let n0 = NoiseDensity::from_watts_per_hz(4.0e-21);
        let p = n0.power_over(Hertz::from_mhz(20.0));
        assert!((p.value() - 8.0e-14).abs() < 1e-25);
    }

    #[test]
    fn round_trip_via_watts_per_hz() {
        let n0 = NoiseDensity::from_dbm_per_hz(-160.0);
        let again = NoiseDensity::from_watts_per_hz(n0.watts_per_hz());
        assert_eq!(n0, again);
    }
}
