//! Small-scale versions of the qualitative claims of the paper's evaluation section, run
//! through the same experiment harness that regenerates the figures.

use experiments::{fig2, fig6, fig7, fig8};
use fedopt_core::SolverConfig;
use flsys::Weights;

#[test]
fn fig2_claims_hold_at_small_scale() {
    let cfg = fig2::Fig2Config {
        devices: 8,
        seeds: vec![201],
        p_max_dbm: vec![6.0, 12.0],
        weights: vec![Weights::new(0.9, 0.1).unwrap(), Weights::new(0.1, 0.9).unwrap()],
        solver: SolverConfig::fast(),
    };
    let (energy, delay) = fig2::run(&cfg).unwrap();
    for ((_, e_row), (_, t_row)) in energy.rows.iter().zip(&delay.rows) {
        // Energy-leaning weights beat the benchmark on energy; time-leaning weights beat it
        // on delay; and the two weightings order as expected on both metrics.
        assert!(e_row[0] < *e_row.last().unwrap());
        assert!(t_row[1] < *t_row.last().unwrap());
        assert!(e_row[0] <= e_row[1] * 1.05);
        assert!(t_row[1] <= t_row[0] * 1.05);
    }
}

#[test]
fn fig6_energy_and_delay_scale_with_training_effort() {
    let cfg = fig6::Fig6Config {
        local_iterations: vec![10, 110],
        global_rounds: vec![50, 400],
        devices: 6,
        seeds: vec![202],
        solver: SolverConfig::fast(),
    };
    let (energy, delay) = fig6::run(&cfg).unwrap();
    // Both metrics grow along both axes of training effort (R_l and R_g).
    for c in 0..2 {
        assert!(energy.rows[1].1[c] > energy.rows[0].1[c]);
        assert!(delay.rows[1].1[c] > delay.rows[0].1[c]);
    }
    for r in 0..2 {
        assert!(energy.rows[r].1[1] > energy.rows[r].1[0]);
        assert!(delay.rows[r].1[1] > delay.rows[r].1[0]);
    }
}

#[test]
fn fig7_ordering_joint_then_comm_then_comp() {
    let cfg = fig7::Fig7Config {
        devices: 8,
        p_max_dbm: 10.0,
        deadlines_s: vec![120.0, 150.0],
        seeds: vec![203],
        solver: SolverConfig::fast(),
    };
    let report = fig7::run(&cfg).unwrap();
    for (deadline, row) in &report.rows {
        assert!(row[0] <= row[1] * 1.02, "T={deadline}: joint should beat comm-only");
        assert!(row[1] <= row[2] * 1.05, "T={deadline}: comm-only should beat comp-only");
    }
}

#[test]
fn fig8_proposed_at_least_matches_scheme1() {
    let cfg = fig8::Fig8Config {
        devices: 8,
        p_max_dbm: vec![8.0, 12.0],
        deadlines_s: vec![45.0, 150.0],
        seeds: vec![204],
        solver: SolverConfig::fast(),
    };
    let report = fig8::run(&cfg).unwrap();
    for (p_max, row) in &report.rows {
        // Columns alternate scheme1/proposed per deadline.
        for pair in row.chunks(2) {
            assert!(
                pair[1] <= pair[0] * 1.02,
                "p_max={p_max}: proposed {} should not lose to scheme1 {}",
                pair[1],
                pair[0]
            );
        }
    }
}
