//! End-to-end integration tests spanning the whole workspace: scenario generation → joint
//! optimization → cost evaluation → comparison against every baseline.

use fedopt::prelude::*;

fn scenario(devices: usize, seed: u64) -> Scenario {
    ScenarioBuilder::paper_default().with_devices(devices).build(seed).unwrap()
}

#[test]
fn proposed_allocation_is_feasible_and_beats_naive_allocations() {
    let s = scenario(12, 100);
    let optimizer = JointOptimizer::new(SolverConfig::fast());
    let naive = s.cost(&Allocation::equal_split_max(&s)).unwrap();
    for weights in Weights::paper_sweep() {
        let out = optimizer.solve(&s, weights).unwrap();
        assert!(out.allocation.is_feasible(&s, 1e-5), "infeasible allocation at {weights:?}");
        assert!(
            out.objective <= naive.objective(weights) * (1.0 + 1e-9),
            "objective at {weights:?} did not improve on the naive allocation"
        );
        // The reported aggregates match an independent re-evaluation through flsys.
        let recheck = s.cost(&out.allocation).unwrap();
        assert!((recheck.total_energy_j - out.total_energy_j).abs() < 1e-9);
        assert!((recheck.total_time_s - out.total_time_s).abs() < 1e-9);
    }
}

#[test]
fn weight_sweep_traces_out_a_monotone_tradeoff() {
    let s = scenario(12, 101);
    let optimizer = JointOptimizer::new(SolverConfig::fast());
    let mut energies = Vec::new();
    let mut times = Vec::new();
    for weights in Weights::paper_sweep() {
        let out = optimizer.solve(&s, weights).unwrap();
        energies.push(out.total_energy_j);
        times.push(out.total_time_s);
    }
    for pair in energies.windows(2) {
        assert!(pair[1] >= pair[0] * 0.95, "energy not monotone along the sweep: {energies:?}");
    }
    for pair in times.windows(2) {
        assert!(pair[1] <= pair[0] * 1.05, "time not monotone along the sweep: {times:?}");
    }
}

#[test]
fn proposed_beats_the_random_benchmark_on_energy() {
    let s = scenario(20, 102);
    let optimizer = JointOptimizer::new(SolverConfig::fast());
    let bench = BenchmarkAllocator::new().random_frequency(&s, 102).unwrap();
    let out = optimizer.solve(&s, Weights::new(0.9, 0.1).unwrap()).unwrap();
    assert!(
        out.total_energy_j < bench.total_energy_j(),
        "proposed {} should beat benchmark {}",
        out.total_energy_j,
        bench.total_energy_j()
    );
}

#[test]
fn deadline_variant_dominates_every_deadline_baseline() {
    let s = scenario(10, 103);
    let cfg = SolverConfig::fast();
    let optimizer = JointOptimizer::new(cfg);
    let scheme1 = Scheme1Allocator::new(cfg);
    let comm = CommOnlyAllocator::new(cfg);
    let comp = CompOnlyAllocator::new(cfg);
    for deadline in [60.0, 100.0, 150.0] {
        let ours = optimizer.solve_with_deadline(&s, deadline).unwrap();
        assert!(ours.total_time_s <= deadline * 1.01, "missed deadline {deadline}");
        for (name, energy) in [
            ("scheme1", scheme1.allocate(&s, deadline).unwrap().total_energy_j()),
            ("comm-only", comm.allocate(&s, deadline).unwrap().total_energy_j()),
            ("comp-only", comp.allocate(&s, deadline).unwrap().total_energy_j()),
        ] {
            assert!(
                ours.total_energy_j <= energy * 1.02,
                "deadline {deadline}: proposed {} should not lose to {name} {energy}",
                ours.total_energy_j
            );
        }
    }
}

#[test]
fn solver_is_deterministic_for_a_fixed_scenario() {
    let s = scenario(8, 104);
    let optimizer = JointOptimizer::new(SolverConfig::fast());
    let a = optimizer.solve(&s, Weights::balanced()).unwrap();
    let b = optimizer.solve(&s, Weights::balanced()).unwrap();
    assert_eq!(a.allocation, b.allocation);
    assert_eq!(a.objective, b.objective);
}

#[test]
fn infeasible_deadline_is_reported_not_silently_violated() {
    let s = scenario(8, 105);
    let optimizer = JointOptimizer::new(SolverConfig::fast());
    let err = optimizer.solve_with_deadline(&s, 0.01).unwrap_err();
    assert!(matches!(err, fedopt::fedopt_core::CoreError::InfeasibleDeadline { .. }));
}
