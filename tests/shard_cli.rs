//! End-to-end fleet execution through the real `fedopt` binary: the coordinator spawns
//! worker subprocesses of the same executable, and the sharded `--json` document must be
//! byte-for-byte the single-process one. Exercises the actual pipes (spec in on stdin,
//! shard result out on stdout) that the in-process fleet tests bypass.

use experiments::json::Json;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn fedopt() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fedopt"));
    // Pin the worker count so the byte-compare is against a fixed schedule (results are
    // thread-count independent, but the stderr chatter is not part of the contract).
    cmd.env("FEDOPT_SWEEP_THREADS", "2");
    cmd
}

/// Runs `fedopt` with `args`, asserting success; returns stdout.
fn run_ok(args: &[&str]) -> String {
    let out = fedopt().args(args).output().expect("fedopt must spawn");
    assert!(
        out.status.success(),
        "fedopt {args:?} failed with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout must be UTF-8")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedopt-shard-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sharded_json_output_is_byte_identical_to_single_process() {
    let single = run_ok(&["run", "--fig", "2", "--seeds", "6", "--json"]);
    let sharded = run_ok(&["run", "--fig", "2", "--seeds", "6", "--json", "--shards", "3"]);
    assert_eq!(sharded, single, "a sharded run must not change a single byte of output");
}

#[test]
fn a_cached_rerun_answers_from_the_cache_and_reports_it() {
    let dir = temp_dir("cache");
    let dir_str = dir.to_str().unwrap();
    let args =
        ["run", "--fig", "2", "--seeds", "6", "--json", "--shards", "3", "--cache-dir", dir_str];
    let cold = run_ok(&args);
    let warm = run_ok(&args);

    let cold_doc = Json::parse(&cold).unwrap();
    let warm_doc = Json::parse(&warm).unwrap();
    let counter = |doc: &Json, name: &str| {
        doc.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap()
    };
    assert_eq!(counter(&cold_doc, "shard_cache_hits"), 0);
    assert_eq!(counter(&cold_doc, "shard_cache_misses"), 3);
    assert_eq!(counter(&warm_doc, "shard_cache_hits"), 3);
    assert_eq!(counter(&warm_doc, "shard_cache_misses"), 0);

    // Cache traffic is the *only* thing that may differ: reports, spec identity and
    // sweep counters are identical between the cold and the cached run.
    assert_eq!(cold_doc.get("reports").unwrap(), warm_doc.get("reports").unwrap());
    assert_eq!(cold_doc.get("spec_id").unwrap(), warm_doc.get("spec_id").unwrap());
    for name in ["scenarios_built", "cells_evaluated"] {
        assert_eq!(counter(&cold_doc, name), counter(&warm_doc, name), "{name}");
    }

    // And the uncached sharded document is these reports without the cache counters.
    let plain = run_ok(&["run", "--fig", "2", "--seeds", "6", "--json", "--shards", "3"]);
    let plain_doc = Json::parse(&plain).unwrap();
    assert_eq!(plain_doc.get("reports").unwrap(), cold_doc.get("reports").unwrap());
    assert!(plain_doc.get("counters").unwrap().get("shard_cache_hits").is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_split_then_worker_mode_round_trips_through_the_real_pipes() {
    let split = run_ok(&["shard", "split", "--fig", "2", "--seeds", "4", "--shards", "2"]);
    let doc = Json::parse(&split).unwrap();
    let shards = doc.as_array().unwrap();
    assert_eq!(shards.len(), 2);

    // Feed the first shard spec to a worker over stdin, exactly as the coordinator does.
    let spec_text = shards[0].to_pretty_string();
    let mut child = fedopt()
        .args(["run", "--spec", "-", "--shard-json"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    use std::io::Write as _;
    child.stdin.take().unwrap().write_all(spec_text.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let result =
        experiments::shard::ShardResult::from_json_str(&String::from_utf8(out.stdout).unwrap())
            .expect("worker stdout must be a shard result document");
    assert_eq!(result.n_seeds, 2, "the first of two shards of 4 seeds carries 2");
}

#[test]
fn fleet_usage_errors_name_the_offending_flag() {
    let out = fedopt().args(["run", "--fig", "2", "--cache-dir", "/tmp/x"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--cache-dir requires --shards"), "{stderr}");
}
