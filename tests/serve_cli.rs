//! The serve chaos suite: the serving contract, end to end through the real `fedopt`
//! binary and its real stdin/stdout (and unix-socket) transports. The contract under
//! test — `fedopt serve` answers every request with a typed response (`ok` |
//! `degraded` | `shed` | `invalid`), never hangs, never panics the supervisor, drains
//! cleanly on EOF/SIGTERM, and identical request streams produce byte-identical
//! response streams.
//!
//! Serve-side faults are planted with `FEDOPT_FAULT_PLAN=<kind>@<request-index>` (see
//! `experiments::fault`): `slowreq` oversleeps one request's deadline, `poisonreq`
//! panics the worker mid-solve, `floodreq` holds a worker while the reader keeps
//! admitting. The warm-start switch is pinned on for every child so the suite behaves
//! identically under the CI matrix's `FEDOPT_WARM_START=0` leg.

use experiments::json::Json;
use std::io::Write as _;
use std::process::{Command, Output, Stdio};

fn fedopt() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fedopt"));
    cmd.env("FEDOPT_SWEEP_THREADS", "2").env("FEDOPT_WARM_START", "1");
    cmd
}

/// Runs `fedopt serve <args>` with the given stdin payload and optional fault plan.
fn serve(args: &[&str], input: &str, fault: Option<&str>) -> Output {
    let mut cmd = fedopt();
    cmd.arg("serve").args(args).stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::piped());
    if let Some(plan) = fault {
        cmd.env("FEDOPT_FAULT_PLAN", plan);
    }
    let mut child = cmd.spawn().expect("fedopt must spawn");
    child.stdin.take().unwrap().write_all(input.as_bytes()).expect("stdin must accept requests");
    child.wait_with_output().expect("fedopt serve must exit")
}

fn small_request(id: &str, seed: u64) -> String {
    format!(
        "{{\"schema_version\":1,\"id\":\"{id}\",\"scenario\":{{\"devices\":5}},\
         \"seed\":{seed},\"solver\":{{\"preset\":\"fast\"}}}}\n"
    )
}

fn response_lines(out: &Output) -> Vec<Json> {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|line| Json::parse(line).expect("every response line must be valid JSON"))
        .collect()
}

fn status_of(v: &Json) -> String {
    v.get("status").and_then(Json::as_str).unwrap().to_string()
}

#[test]
fn a_replayed_request_stream_is_byte_identical_and_fully_typed() {
    let stream = format!(
        "{}{}not even json\n{}",
        small_request("a", 3),
        small_request("a-again", 3), // same problem as "a": a warm-cache hit
        small_request("b", 4),
    );
    let first = serve(&["--workers", "1"], &stream, None);
    assert!(first.status.success(), "{}", String::from_utf8_lossy(&first.stderr));
    let lines = response_lines(&first);
    let statuses: Vec<String> = lines.iter().map(status_of).collect();
    assert_eq!(statuses, ["ok", "ok", "invalid", "ok"]);
    // The warm-cache hit resolves with zero Jong iterations — counter-asserted through
    // the real binary, not just the in-process unit suite.
    let warm = &lines[1];
    assert_eq!(warm.get("warm").and_then(Json::as_str), Some("hit"));
    let jong =
        warm.get("counters").and_then(|c| c.get("jong_iterations")).and_then(Json::as_u64).unwrap();
    assert_eq!(jong, 0, "a warm-cache hit must skip the Newton-like loop entirely");
    // The stats line is the run's stderr summary.
    let stderr = String::from_utf8_lossy(&first.stderr);
    assert!(stderr.contains("fedopt-serve-stats requests=4"), "{stderr}");
    // Byte-identity across a full process restart: same stream, same bytes.
    let second = serve(&["--workers", "1"], &stream, None);
    assert!(second.status.success());
    assert_eq!(first.stdout, second.stdout, "a replayed stream must answer byte-identically");
}

#[test]
fn a_slow_request_misses_its_deadline_as_a_typed_degradation() {
    let stream = format!("{}{}", small_request("slow", 1), small_request("next", 2));
    let out = serve(&["--workers", "1", "--deadline-ms", "50"], &stream, Some("slowreq@0"));
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let lines = response_lines(&out);
    assert_eq!(status_of(&lines[0]), "degraded");
    let reason = lines[0].get("reason").and_then(Json::as_str).unwrap();
    assert!(reason.contains("deadline expired"), "{reason}");
    // The service answers on: a deadline miss degrades one response, not the session.
    assert_eq!(status_of(&lines[1]), "ok");
}

#[test]
fn overload_sheds_deterministically_instead_of_queueing_unboundedly() {
    let stream: String = (0..4).map(|i| small_request(&format!("r{i}"), i)).collect();
    let out = serve(&["--workers", "1", "--queue-depth", "1"], &stream, Some("floodreq@0"));
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let statuses: Vec<String> = response_lines(&out).iter().map(status_of).collect();
    // Request 0 holds the only worker, request 1 fills the depth-1 queue, 2 and 3 shed.
    assert_eq!(statuses, ["ok", "ok", "shed", "shed"]);
    let lines = response_lines(&out);
    let error = lines[2].get("error").and_then(Json::as_str).unwrap();
    assert!(error.contains("queue full"), "{error}");
}

#[test]
fn a_poisoned_request_quarantines_its_worker_and_the_service_answers_on() {
    let stream = format!("{}{}", small_request("poison", 1), small_request("after", 2));
    let out = serve(&["--workers", "1"], &stream, Some("poisonreq@0"));
    assert!(out.status.success(), "a worker panic must never kill the supervisor");
    let lines = response_lines(&out);
    assert_eq!(status_of(&lines[0]), "degraded");
    let reason = lines[0].get("reason").and_then(Json::as_str).unwrap();
    assert!(reason.contains("worker panicked"), "{reason}");
    assert!(reason.contains("quarantined"), "{reason}");
    assert_eq!(status_of(&lines[1]), "ok", "the respawned workspace serves the next request");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("worker_restarts=1"), "{stderr}");
}

#[test]
fn eof_drains_cleanly_even_with_no_requests() {
    let out = serve(&[], "", None);
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "no requests, no responses");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fedopt-serve-stats requests=0"), "{stderr}");
}

#[cfg(unix)]
#[test]
fn sigterm_drains_the_socket_transport_gracefully() {
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!("fedopt-serve-term-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("fedopt.sock");
    let mut child = fedopt()
        .args(["serve", "--socket"])
        .arg(&socket)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("fedopt must spawn");

    // Wait for the bind, answer one request over the socket, then SIGTERM.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stream = loop {
        match UnixStream::connect(&socket) {
            Ok(stream) => break stream,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(25)),
            Err(e) => panic!("socket never came up: {e}"),
        }
    };
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(small_request("s", 5).as_bytes()).unwrap();
    writer.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reader = stream;
    let mut response = String::new();
    std::io::Read::read_to_string(&mut reader, &mut response).unwrap();
    let doc = Json::parse(response.trim()).expect("one JSON response per request");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill must run");
    assert!(term.success());
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        match child.try_wait().expect("wait must not fail") {
            Some(status) => break status,
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(25)),
            None => {
                let _ = child.kill();
                panic!("SIGTERM must drain the service, not leave it accepting");
            }
        }
    };
    assert!(status.success(), "a drained service exits cleanly");
    let mut stderr = String::new();
    std::io::Read::read_to_string(child.stderr.as_mut().unwrap(), &mut stderr).unwrap();
    assert!(stderr.contains("fedopt-serve-stats requests=1"), "{stderr}");
    assert!(!socket.exists(), "the socket file is removed on clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}
