//! The chaos suite: every injected fault class, end to end through the real `fedopt`
//! binary and its real subprocess pipes. The hardening contract under test — a fleet
//! run either completes byte-identical to the single-process run, salvages with
//! *explicit* holes, or fails with a typed error; it never hangs, never panics the
//! coordinator, and never returns silently-wrong aggregates.
//!
//! Faults are planted with `FEDOPT_FAULT_PLAN=<kind>@<seed>` (see
//! `experiments::fault`): only the worker whose shard starts at the target seed
//! misbehaves. Every test here runs `--fig 2 --seeds 6 --shards 3`, so the shards carry
//! seeds `0..2`, `2..4` and `4..6` and a plan targeting seed 2 fails exactly the middle
//! shard.

use experiments::json::Json;
use std::process::Command;

fn fedopt() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fedopt"));
    cmd.env("FEDOPT_SWEEP_THREADS", "2");
    cmd
}

const FLEET: &[&str] =
    &["run", "--fig", "2", "--seeds", "6", "--json", "--shards", "3", "--shard-retries", "0"];

/// Runs the fleet command under a fault plan; returns (exit-success, stdout, stderr).
fn run_fleet_with_fault(plan: &str, extra: &[&str]) -> (bool, String, String) {
    let out = fedopt()
        .args(FLEET)
        .args(extra)
        .env("FEDOPT_FAULT_PLAN", plan)
        .output()
        .expect("fedopt must spawn");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn a_crashing_worker_fails_the_run_with_a_typed_partial_report() {
    let (ok, _, stderr) = run_fleet_with_fault("crash@2", &[]);
    assert!(!ok, "a crashed shard without --allow-partial must fail the run");
    assert!(stderr.contains("fleet run FAILED"), "{stderr}");
    assert!(stderr.contains("seeds 2..4"), "the report names the dead shard: {stderr}");
    assert!(stderr.contains("injected fault: crash on entry"), "{stderr}");
}

#[test]
fn allow_partial_salvages_a_crash_with_an_explicit_hole() {
    let (ok, stdout, stderr) = run_fleet_with_fault("crash@2", &["--allow-partial"]);
    assert!(ok, "salvage mode must succeed when survivors exist: {stderr}");
    let doc = Json::parse(&stdout).expect("salvaged output is still one JSON document");
    let holes = doc.get("shard_holes").expect("a salvaged run reports its holes").clone();
    let holes = holes.as_array().unwrap();
    assert_eq!(holes.len(), 1);
    assert_eq!(holes[0].get("seeds").unwrap().as_str().unwrap(), "2..4");
    assert_eq!(holes[0].get("shard").unwrap().as_u64().unwrap(), 1);
    // The caveat rides inside every report too — a consumer reading only a figure's
    // table or JSON cannot miss that the means cover fewer draws.
    let reports = doc.get("reports").unwrap().as_array().unwrap();
    for report in reports {
        let note = report.get("note").expect("salvaged reports carry a note");
        assert!(
            note.as_str().unwrap().contains("seeds 2..4 missing"),
            "note must name the hole: {note:?}"
        );
    }
    assert!(stderr.contains("WARNING: salvaged a partial fleet run"), "{stderr}");

    // Against the fault-free control: same spec identity, visibly less work done (the
    // hole's draws were genuinely skipped, not renormalized away), and no hole members.
    let (ok, clean, _) = run_fleet_with_fault("crash@999", &["--allow-partial"]);
    assert!(ok);
    let clean_doc = Json::parse(&clean).unwrap();
    assert_eq!(doc.get("spec_id").unwrap(), clean_doc.get("spec_id").unwrap());
    assert!(clean_doc.get("shard_holes").is_none(), "a clean run reports no holes");
    let cells =
        |d: &Json| d.get("counters").unwrap().get("cells_evaluated").unwrap().as_u64().unwrap();
    assert!(cells(&doc) < cells(&clean_doc), "the salvaged run must have done less work");
}

#[test]
fn a_truncated_wire_document_is_a_typed_codec_error_not_a_wrong_answer() {
    let (ok, _, stderr) = run_fleet_with_fault("truncate@2", &[]);
    assert!(!ok, "a truncated shard document must fail the run");
    assert!(stderr.contains("fleet run FAILED"), "{stderr}");
    assert!(stderr.contains("seeds 2..4"), "{stderr}");
}

#[test]
fn a_corrupted_wire_document_is_caught_by_the_checksum() {
    let (ok, _, stderr) = run_fleet_with_fault("corrupt@2", &[]);
    assert!(!ok, "a corrupted shard document must fail the run");
    // Depending on where the flipped byte lands the document either stops parsing or
    // parses with a wrong payload — the checksum catches the latter. Either way the
    // error is typed and names the shard; it is never merged.
    assert!(stderr.contains("seeds 2..4"), "{stderr}");
}

#[test]
fn a_stalled_worker_is_killed_on_heartbeat_silence_not_wall_clock() {
    let start = std::time::Instant::now();
    let (ok, _, stderr) = run_fleet_with_fault("stall@2", &["--shard-heartbeat", "1"]);
    assert!(!ok, "a stalled shard must fail the run");
    assert!(stderr.contains("no heartbeat"), "the kill names its cause: {stderr}");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "heartbeat silence must end the stall long before any default wall clock"
    );
}

#[test]
fn a_stderr_flooding_worker_leaves_a_bounded_truncated_tail() {
    let (ok, _, stderr) = run_fleet_with_fault("flood@2", &[]);
    assert!(!ok);
    assert!(stderr.contains("… (truncated)"), "the tail marks what it dropped: {stderr}");
    assert!(stderr.contains("injected flood line 4999"), "the newest lines survive: {stderr}");
    assert!(
        !stderr.contains("injected flood line 0:"),
        "the oldest flood lines must have been dropped: {stderr}"
    );
}

#[test]
fn a_control_plan_changes_nothing_byte_for_byte() {
    // Seed 999 is outside the sweep: the plan arms but never fires, and the fleet
    // output stays byte-identical to the single-process run — the strongest form of
    // "the chaos machinery itself is inert when not triggered".
    let single = fedopt()
        .args(["run", "--fig", "2", "--seeds", "6", "--json"])
        .output()
        .expect("fedopt must spawn");
    assert!(single.status.success());
    let (ok, sharded, _) = run_fleet_with_fault("crash@999", &[]);
    assert!(ok);
    assert_eq!(
        sharded,
        String::from_utf8_lossy(&single.stdout),
        "a dormant fault plan must not change a single output byte"
    );
}

#[test]
fn fill_holes_resumes_a_salvaged_run_to_byte_identity() {
    let dir = std::env::temp_dir().join(format!("fedopt-fill-holes-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache");
    let cache_arg = cache.to_str().unwrap().to_string();

    // The reference: the never-faulted single-process document.
    let single = fedopt()
        .args(["run", "--fig", "2", "--seeds", "6", "--json"])
        .output()
        .expect("fedopt must spawn");
    assert!(single.status.success());

    // Salvage under an injected crash, with the survivors landing in the cache. The
    // salvaged document records both the holes and the split that produced them.
    let (ok, salvaged, _) =
        run_fleet_with_fault("crash@2", &["--allow-partial", "--cache-dir", &cache_arg]);
    assert!(ok, "salvage must succeed");
    assert!(salvaged.contains("\"shard_count\": 3"), "the split is recorded: {salvaged}");
    assert!(salvaged.contains("\"seeds\": \"2..4\""), "{salvaged}");
    let report = dir.join("report.json");
    std::fs::write(&report, &salvaged).unwrap();

    // Resume: only the hole is recomputed, the survivors replay from the cache, and
    // the filled document is byte-identical to the run that never faulted.
    let out = fedopt()
        .args(["run", "--fig", "2", "--seeds", "6", "--json", "--fill-holes"])
        .arg(&report)
        .args(["--cache-dir", &cache_arg])
        .output()
        .expect("fedopt must spawn");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&single.stdout),
        "the filled document must be byte-identical to the never-faulted run"
    );
    assert!(
        stderr.contains("holes filled: 2 shard(s) answered from the cache, 1 recomputed"),
        "only the hole costs compute: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_malformed_fault_plan_is_a_loud_error_not_a_silent_control_run() {
    let out = fedopt()
        .args(["run", "--spec", "-", "--shard-json"])
        .env("FEDOPT_FAULT_PLAN", "segfault@oops")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            use std::io::Write as _;
            let spec = fedopt()
                .args(["spec", "--fig", "2", "--seeds", "2"])
                .output()
                .expect("spec must print");
            child.stdin.take().unwrap().write_all(&spec.stdout)?;
            child.wait_with_output()
        })
        .expect("fedopt must spawn");
    assert!(!out.status.success(), "a typo'd chaos plan must not pass as a clean run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("FEDOPT_FAULT_PLAN"), "{stderr}");
}
