//! Integration of the resource allocator with the FedAvg training simulator: the optimized
//! allocation trains the same model for less energy than the benchmark allocation.

use fedopt::fedsim::prelude::*;
use fedopt::fedsim::FedAvgConfig;
use fedopt::prelude::*;

#[test]
fn optimized_allocation_trains_same_model_cheaper() {
    let devices = 6;
    let rounds = 12;
    let scenario = ScenarioBuilder::paper_default()
        .with_devices(devices)
        .with_global_rounds(rounds)
        .build(300)
        .unwrap();
    let dataset = FederatedDataset::synthetic(
        &SyntheticConfig::default().with_devices(devices).with_samples_per_device(60),
        300,
    );

    let optimizer = JointOptimizer::new(SolverConfig::fast());
    let optimized = optimizer.solve(&scenario, Weights::balanced()).unwrap();
    let benchmark = BenchmarkAllocator::new().random_frequency(&scenario, 300).unwrap();

    let runner = FedAvgRunner::new(FedAvgConfig::default());
    let run_opt = runner.run(&scenario, &optimized.allocation, &dataset).unwrap();
    let run_bench = runner.run(&scenario, &benchmark.allocation, &dataset).unwrap();

    // Identical learning trajectory (the allocation does not change the math of FedAvg)...
    assert_eq!(run_opt.rounds.len(), rounds as usize);
    assert!((run_opt.final_accuracy - run_bench.final_accuracy).abs() < 1e-12);
    assert!((run_opt.final_loss - run_bench.final_loss).abs() < 1e-12);
    // ...at a lower energy cost.
    assert!(run_opt.total_energy_j < run_bench.total_energy_j);
    // Training makes progress.
    assert!(run_opt.final_loss < run_opt.rounds[0].global_loss);
    assert!(run_opt.final_accuracy > 0.6);
}

#[test]
fn cumulative_accounting_matches_closed_form_totals() {
    let scenario =
        ScenarioBuilder::paper_default().with_devices(4).with_global_rounds(5).build(301).unwrap();
    let dataset = FederatedDataset::synthetic(
        &SyntheticConfig::default().with_devices(4).with_samples_per_device(40),
        301,
    );
    let allocation = Allocation::equal_split_max(&scenario);
    let report =
        FedAvgRunner::new(FedAvgConfig::default()).run(&scenario, &allocation, &dataset).unwrap();
    let cost = scenario.cost(&allocation).unwrap();
    // 5 rounds of the closed-form per-round cost equal the simulator's cumulative totals.
    assert!(
        (report.total_energy_j - cost.total_energy_j / scenario.params.rg() * 5.0).abs() < 1e-9
    );
    assert!((report.total_time_s - cost.round_time_s * 5.0).abs() < 1e-9);
}
